package report

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fairrank/internal/core"
	"fairrank/internal/rank"
)

// BundleVersion identifies the audit-bundle schema. Bump it whenever a
// field is added, removed, or changes meaning, so downstream consumers of
// archived bundles can dispatch on the version they were written with.
// Version 2 added the optional exposure section.
const BundleVersion = "2"

// DefaultMargins is the number of boundary objects audited on each side of
// the cutoff when BundleConfig.Margins is zero.
const DefaultMargins = 5

// MaxBeneficiaryIDs caps the AdmittedByBonus and DisplacedByBonus id
// lists a bundle carries. AdmittedCount/DisplacedCount always report the
// true totals; the lists hold the first MaxBeneficiaryIDs ids in
// ascending order. A policy audit needs the counts and a verifiable
// sample — a full population dump is a data export, not a policy
// document, and an unbounded list would also let one cached bundle pin
// O(population) memory in a serving-layer cache.
const MaxBeneficiaryIDs = 2048

// BundleConfig parameterizes BuildBundle.
type BundleConfig struct {
	// Dataset names the audited population in the bundle metadata (the
	// evaluator itself carries no name).
	Dataset string
	// Bonus is the published bonus-point policy under audit. It must be a
	// full, non-zero vector: an audit of "no policy" has no policy to
	// publish, and a truncated vector would silently drop attributes.
	Bonus []float64
	// K is the audited selection fraction, in (0, 1].
	K float64
	// Margins is how many objects on each side of the published cutoff get
	// counterfactual margin lines; 0 means DefaultMargins, negative is
	// rejected. The window is clamped to the population.
	Margins int
	// IncludeFPR adds per-group false-positive-rate differences to the
	// bundle; the dataset must carry ground-truth outcomes.
	IncludeFPR bool
	// IncludeExposure adds per-capita exposure and its demographic
	// disparity (with and without the policy) to the bundle; every
	// fairness attribute must be binary.
	IncludeExposure bool
}

// PolicyLine is one fairness attribute's row of the published policy: its
// bonus points, its selection counts with and without compensation, and
// its leave-one-out share of the disparity reduction.
type PolicyLine struct {
	Attribute       string  `json:"attribute"`
	Points          float64 `json:"points"`
	GroupSize       int     `json:"group_size"`
	SelectedWith    int     `json:"selected_with"`
	SelectedWithout int     `json:"selected_without"`
	// LeaveOneOutNorm is the disparity norm with this attribute's bonus
	// withdrawn; Contribution is how much worse that is than the full
	// policy's norm.
	LeaveOneOutNorm float64 `json:"leave_one_out_norm"`
	Contribution    float64 `json:"contribution"`
}

// MarginLine is one boundary object's counterfactual margin: how far its
// effective score sits from flipping, in score and in bonus points. When
// Feasible is false no change can flip the object (the selection covers
// the whole population) and the deltas are meaningless — renderers must
// not present them as "zero change flips".
type MarginLine struct {
	Object     int     `json:"object"`
	Rank       int     `json:"rank"`
	Selected   bool    `json:"selected"`
	Effective  float64 `json:"effective"`
	ScoreDelta float64 `json:"score_delta"`
	BonusDelta float64 `json:"bonus_delta"`
	Feasible   bool    `json:"feasible"`
}

// Bundle is a versioned audit bundle: everything a regulator, journalist,
// or applicant needs to verify a published bonus-point policy — the
// cutoff, the policy itself with per-group effects and attribution, the
// beneficiary and displaced lists, and exact counterfactual margins around
// the cutoff. Build one with BuildBundle; render it with RenderJSON,
// RenderCSV, RenderMarkdown, or the format-dispatching Render.
type Bundle struct {
	Version  string  `json:"version"`
	Dataset  string  `json:"dataset"`
	N        int     `json:"n"`
	Polarity string  `json:"polarity"`
	K        float64 `json:"k"`
	Selected int     `json:"selected"`

	// Cutoff is the effective score of the last selected object under the
	// policy; BaseCutoff the same for the uncompensated ranking.
	Cutoff     float64 `json:"cutoff"`
	BaseCutoff float64 `json:"base_cutoff"`

	Policy []PolicyLine `json:"policy"`

	// NormBefore/NormAfter are the disparity norms without and with the
	// policy; NDCG is the utility retained relative to the uncompensated
	// ranking.
	NormBefore float64 `json:"norm_before"`
	NormAfter  float64 `json:"norm_after"`
	NDCG       float64 `json:"ndcg"`

	// FPRDiff carries per-group false-positive-rate differences under the
	// policy when the config asked for them (requires outcomes).
	FPRDiff []float64 `json:"fpr_diff,omitempty"`

	// Exposure carries the per-capita exposure section when the config
	// asked for it (requires binary fairness attributes); nil otherwise,
	// so an unrequested section is omitted from every rendered form.
	Exposure *ExposureSection `json:"exposure,omitempty"`

	// AdmittedCount and DisplacedCount are the numbers of objects whose
	// selection status the policy changed; AdmittedByBonus and
	// DisplacedByBonus list their ids in ascending order, truncated to
	// MaxBeneficiaryIDs entries each.
	AdmittedCount    int   `json:"admitted_count"`
	DisplacedCount   int   `json:"displaced_count"`
	AdmittedByBonus  []int `json:"admitted_by_bonus"`
	DisplacedByBonus []int `json:"displaced_by_bonus"`

	// Margins are counterfactual margin lines for the objects closest to
	// the cutoff on both sides, in rank order.
	Margins []MarginLine `json:"margins"`
}

// ExposureSection is the bundle's position-bias view: how much ranking
// attention (weight 1/log2(rank+1)) each group receives per member inside
// the selection, with and without the policy. Groups lists the binary
// fairness attributes plus the trailing "rest" group (objects belonging
// to none); DDP is the max−min spread of the per-capita entries over
// populated groups — the quantity the policy is meant to compress.
type ExposureSection struct {
	Groups        []string  `json:"groups"`
	PerCapita     []float64 `json:"per_capita"`
	DDP           float64   `json:"ddp"`
	BasePerCapita []float64 `json:"base_per_capita"`
	BaseDDP       float64   `json:"base_ddp"`
}

// BuildBundle assembles the audit bundle for a bonus policy at fraction k
// from one evaluator: the transparency report (cutoff, counts,
// beneficiaries), the leave-one-out attribution, nDCG, and counterfactual
// margins for the boundary window. It is BuildBundleStats (one shared
// rank-once BundleData pass) followed by FromStats (presentation).
func BuildBundle(ev *core.Evaluator, cfg BundleConfig) (*Bundle, error) {
	return BuildBundleCtx(context.Background(), ev, cfg)
}

// BuildBundleCtx is BuildBundle with cooperative cancellation.
func BuildBundleCtx(ctx context.Context, ev *core.Evaluator, cfg BundleConfig) (*Bundle, error) {
	st, err := BuildBundleStatsCtx(ctx, ev, cfg)
	if err != nil {
		return nil, err
	}
	return FromStats(ev, cfg.Dataset, st), nil
}

// BuildBundleStats validates an audit request and runs the rank-once
// BundleData pass behind BuildBundle, returning the raw quantities.
// Callers that need more than the rendered bundle — the service reuses
// the margin counterfactuals to seed its per-object cache — build the
// stats once and derive both views from them. Validation happens before
// any computation: an empty dataset, a missing or all-zero bonus policy,
// a dimensionality mismatch, a bad fraction, negative margins, and an FPR
// request without outcomes are all rejected.
func BuildBundleStats(ev *core.Evaluator, cfg BundleConfig) (*core.BundleStats, error) {
	return BuildBundleStatsCtx(context.Background(), ev, cfg)
}

// BuildBundleStatsCtx is BuildBundleStats with cooperative cancellation:
// once ctx is done the shared BundleData pass aborts at its next
// checkpoint and the context's error is returned.
func BuildBundleStatsCtx(ctx context.Context, ev *core.Evaluator, cfg BundleConfig) (*core.BundleStats, error) {
	margins, err := ValidateBundleConfig(ev, cfg)
	if err != nil {
		return nil, err
	}
	return ev.BundleStatsCtx(ctx, core.BundleStatsConfig{
		Bonus:           cfg.Bonus,
		K:               cfg.K,
		Margins:         margins,
		IncludeFPR:      cfg.IncludeFPR,
		IncludeExposure: cfg.IncludeExposure,
	})
}

// ValidateBundleConfig checks an audit request against the evaluator's
// dataset and returns the normalized margin window (zero maps to
// DefaultMargins). BuildBundleStatsCtx runs it before computing; callers
// that route the computation elsewhere — the service micro-batcher hands
// the pass to core.AnswerBatchCtx — run it themselves first, so every
// rejection is byte-identical to the direct path's.
func ValidateBundleConfig(ev *core.Evaluator, cfg BundleConfig) (int, error) {
	d := ev.Dataset()
	if d.N() == 0 {
		return 0, fmt.Errorf("report: cannot audit an empty dataset")
	}
	if len(cfg.Bonus) == 0 {
		return 0, fmt.Errorf("report: missing bonus policy (nothing to audit)")
	}
	if len(cfg.Bonus) != d.NumFair() {
		return 0, fmt.Errorf("report: bonus has %d dimensions, dataset has %d", len(cfg.Bonus), d.NumFair())
	}
	zero := true
	for _, b := range cfg.Bonus {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return 0, fmt.Errorf("report: bonus policy is all zero (nothing to audit)")
	}
	if err := rank.CheckFraction(cfg.K); err != nil {
		return 0, err
	}
	if cfg.Margins < 0 {
		return 0, fmt.Errorf("report: margins must be non-negative, got %d", cfg.Margins)
	}
	if cfg.IncludeFPR && !d.HasOutcomes() {
		return 0, fmt.Errorf("report: FPR differences require outcomes, dataset has none")
	}
	if cfg.IncludeExposure {
		if ok, offending := d.BinaryFairColumns(); !ok {
			return 0, fmt.Errorf("report: the exposure section requires binary fairness attributes; %q is continuous", offending)
		}
		if d.NumFair() == 0 {
			return 0, fmt.Errorf("report: the exposure section requires fairness attributes, dataset has none")
		}
	}
	margins := cfg.Margins
	if margins == 0 {
		margins = DefaultMargins
	}
	return margins, nil
}

// FromStats shapes one BundleData pass into the versioned audit bundle.
// Every list field is non-nil, so an empty beneficiary list renders as an
// empty JSON array (and an empty CSV/Markdown section), never as null.
func FromStats(ev *core.Evaluator, dataset string, st *core.BundleStats) *Bundle {
	d := ev.Dataset()
	b := &Bundle{
		Version:          BundleVersion,
		Dataset:          dataset,
		N:                d.N(),
		Polarity:         ev.Polarity().String(),
		K:                st.K,
		Selected:         st.Selected,
		Cutoff:           st.Cutoff,
		BaseCutoff:       st.BaseCutoff,
		NormBefore:       st.NormBefore,
		NormAfter:        st.NormAfter,
		NDCG:             st.NDCG,
		FPRDiff:          st.FPRDiff,
		AdmittedCount:    len(st.AdmittedByBonus),
		DisplacedCount:   len(st.DisplacedByBonus),
		AdmittedByBonus:  capIDs(st.AdmittedByBonus),
		DisplacedByBonus: capIDs(st.DisplacedByBonus),
	}
	b.Policy = make([]PolicyLine, d.NumFair())
	for j := range b.Policy {
		b.Policy[j] = PolicyLine{
			Attribute:       st.FairNames[j],
			Points:          st.Bonus[j],
			GroupSize:       d.GroupSize(j),
			SelectedWith:    st.GroupCounts[j],
			SelectedWithout: st.BaseGroupCounts[j],
			LeaveOneOutNorm: st.LeaveOneOut[j],
			Contribution:    st.Contribution[j],
		}
	}
	if st.Exposure != nil {
		groups := make([]string, 0, d.NumFair()+1)
		groups = append(groups, st.FairNames...)
		groups = append(groups, "rest")
		b.Exposure = &ExposureSection{
			Groups:        groups,
			PerCapita:     append([]float64(nil), st.Exposure...),
			DDP:           st.ExposureDDP,
			BasePerCapita: append([]float64(nil), st.BaseExposure...),
			BaseDDP:       st.BaseExposureDDP,
		}
	}
	b.Margins = make([]MarginLine, len(st.Margins))
	for i, cf := range st.Margins {
		b.Margins[i] = MarginLine{
			Object:     cf.Object,
			Rank:       cf.Rank,
			Selected:   cf.Selected,
			Effective:  cf.Effective,
			ScoreDelta: cf.ScoreDelta,
			BonusDelta: cf.BonusDelta,
			Feasible:   cf.Feasible,
		}
	}
	return b
}

// capIDs copies at most MaxBeneficiaryIDs leading ids into a fresh,
// never-nil slice; the copy also detaches the bundle from the stats'
// backing slice, and non-nil keeps the JSON form an array even when the
// list is empty.
func capIDs(ids []int) []int {
	if len(ids) > MaxBeneficiaryIDs {
		ids = ids[:MaxBeneficiaryIDs]
	}
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

// Render writes the bundle in the named format: "json", "csv", or
// "markdown" (alias "md").
func (b *Bundle) Render(w io.Writer, format string) error {
	switch format {
	case "json":
		return b.RenderJSON(w)
	case "csv":
		return b.RenderCSV(w)
	case "markdown", "md":
		return b.RenderMarkdown(w)
	default:
		return fmt.Errorf("report: unknown bundle format %q (want json, csv or markdown)", format)
	}
}

// RenderJSON writes the bundle as indented JSON, the machine-readable
// archival form.
func (b *Bundle) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// RenderCSV writes the bundle as sectioned CSV: every row starts with a
// section tag (meta, policy, fpr, exposure, exposure_ddp, admitted,
// displaced, margin) so the flat
// file remains self-describing when sections are filtered with standard
// tools. Every section that applies to the bundle opens with a header row
// even when it has no data rows (an empty beneficiary list is a finding,
// not a formatting accident); only a section that was not requested — fpr
// on a bundle built without FPR differences — is omitted entirely. The
// same rule governs the JSON and Markdown forms.
func (b *Bundle) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := [][2]string{
		{"version", b.Version},
		{"dataset", b.Dataset},
		{"n", strconv.Itoa(b.N)},
		{"polarity", b.Polarity},
		{"k", fmtG(b.K)},
		{"selected", strconv.Itoa(b.Selected)},
		{"cutoff", fmtG(b.Cutoff)},
		{"base_cutoff", fmtG(b.BaseCutoff)},
		{"norm_before", fmtG(b.NormBefore)},
		{"norm_after", fmtG(b.NormAfter)},
		{"ndcg", fmtG(b.NDCG)},
		{"admitted_count", strconv.Itoa(b.AdmittedCount)},
		{"displaced_count", strconv.Itoa(b.DisplacedCount)},
	}
	for _, kv := range meta {
		if err := cw.Write([]string{"meta", kv[0], kv[1]}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"policy", "attribute", "points", "group_size",
		"selected_with", "selected_without", "leave_one_out_norm", "contribution"}); err != nil {
		return err
	}
	for _, p := range b.Policy {
		if err := cw.Write([]string{"policy", p.Attribute, fmtG(p.Points),
			strconv.Itoa(p.GroupSize), strconv.Itoa(p.SelectedWith), strconv.Itoa(p.SelectedWithout),
			fmtG(p.LeaveOneOutNorm), fmtG(p.Contribution)}); err != nil {
			return err
		}
	}
	if b.FPRDiff != nil {
		if err := cw.Write([]string{"fpr", "attribute", "fpr_diff"}); err != nil {
			return err
		}
		for j, v := range b.FPRDiff {
			if err := cw.Write([]string{"fpr", b.Policy[j].Attribute, fmtG(v)}); err != nil {
				return err
			}
		}
	}
	if b.Exposure != nil {
		if err := cw.Write([]string{"exposure", "group", "per_capita", "base_per_capita"}); err != nil {
			return err
		}
		for j, g := range b.Exposure.Groups {
			if err := cw.Write([]string{"exposure", g,
				fmtG(b.Exposure.PerCapita[j]), fmtG(b.Exposure.BasePerCapita[j])}); err != nil {
				return err
			}
		}
		if err := cw.Write([]string{"exposure_ddp", "with_policy", fmtG(b.Exposure.DDP)}); err != nil {
			return err
		}
		if err := cw.Write([]string{"exposure_ddp", "without_policy", fmtG(b.Exposure.BaseDDP)}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"admitted", "object"}); err != nil {
		return err
	}
	for _, id := range b.AdmittedByBonus {
		if err := cw.Write([]string{"admitted", strconv.Itoa(id)}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"displaced", "object"}); err != nil {
		return err
	}
	for _, id := range b.DisplacedByBonus {
		if err := cw.Write([]string{"displaced", strconv.Itoa(id)}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"margin", "object", "rank", "selected",
		"effective", "score_delta", "bonus_delta", "feasible"}); err != nil {
		return err
	}
	for _, m := range b.Margins {
		score, bonus := fmtG(m.ScoreDelta), fmtG(m.BonusDelta)
		if !m.Feasible {
			// An unflippable object has no meaningful delta; empty cells
			// beat a literal 0 that reads as "zero change flips".
			score, bonus = "", ""
		}
		if err := cw.Write([]string{"margin", strconv.Itoa(m.Object), strconv.Itoa(m.Rank),
			strconv.FormatBool(m.Selected), fmtG(m.Effective), score, bonus,
			strconv.FormatBool(m.Feasible)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the bundle as the human-readable policy document —
// the form the paper argues bonus points make possible: published in
// advance, read directly as policy.
func (b *Bundle) RenderMarkdown(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# Fair-ranking audit bundle (v%s)\n\n", b.Version)
	p("Dataset **%s** — %d objects, %s selection, top %s%% (%d selected).\n\n",
		b.Dataset, b.N, b.Polarity, fmtG(b.K*100), b.Selected)
	p("Published cutoff: **%s** (uncompensated: %s). ", fmtG(b.Cutoff), fmtG(b.BaseCutoff))
	p("Disparity norm %s → %s; nDCG %s.\n\n", fmtG(b.NormBefore), fmtG(b.NormAfter), fmtG(b.NDCG))

	p("## Policy\n\n")
	p("| Attribute | Bonus points | Group size | Selected (with) | Selected (without) | Norm w/o this bonus | Contribution |\n")
	p("| --- | ---: | ---: | ---: | ---: | ---: | ---: |\n")
	for _, line := range b.Policy {
		p("| %s | %s | %d | %d | %d | %s | %s |\n", line.Attribute, fmtG(line.Points),
			line.GroupSize, line.SelectedWith, line.SelectedWithout,
			fmtG(line.LeaveOneOutNorm), fmtG(line.Contribution))
	}
	p("\n")
	if len(b.FPRDiff) > 0 {
		p("## False-positive-rate differences\n\n| Attribute | FPR diff |\n| --- | ---: |\n")
		for j, v := range b.FPRDiff {
			p("| %s | %s |\n", b.Policy[j].Attribute, fmtG(v))
		}
		p("\n")
	}
	if b.Exposure != nil {
		p("## Exposure\n\n")
		p("Per-capita ranking attention (weight 1/log2(rank+1)) inside the selection; ")
		p("disparity (max − min over populated groups) %s → %s under the policy.\n\n",
			fmtG(b.Exposure.BaseDDP), fmtG(b.Exposure.DDP))
		p("| Group | Per capita (with policy) | Per capita (without) |\n")
		p("| --- | ---: | ---: |\n")
		for j, g := range b.Exposure.Groups {
			p("| %s | %s | %s |\n", g, fmtG(b.Exposure.PerCapita[j]), fmtG(b.Exposure.BasePerCapita[j]))
		}
		p("\n")
	}
	p("## Selection changes\n\nAdmitted through bonus points: %d; displaced: %d.\n\n",
		b.AdmittedCount, b.DisplacedCount)
	p("%s\n", idLine("Admitted ids", b.AdmittedByBonus, b.AdmittedCount))
	p("%s\n\n", idLine("Displaced ids", b.DisplacedByBonus, b.DisplacedCount))

	p("## Counterfactual margins at the cutoff\n\n")
	p("Minimal change that flips each boundary object, in effective score and in bonus points.\n\n")
	p("| Object | Rank | Selected | Effective | Score delta | Bonus delta |\n")
	p("| ---: | ---: | :-: | ---: | ---: | ---: |\n")
	for _, m := range b.Margins {
		score, bonus := fmtG(m.ScoreDelta), fmtG(m.BonusDelta)
		if !m.Feasible {
			score, bonus = "unflippable", "unflippable"
		}
		p("| %d | %d | %t | %s | %s | %s |\n", m.Object, m.Rank, m.Selected,
			fmtG(m.Effective), score, bonus)
	}
	return err
}

// idLine renders one beneficiary id list as a Markdown line. An empty
// list says "none" explicitly — the same section always appears, so the
// three renderers agree on what an empty list looks like — and a
// truncated list names the cap so the count/list mismatch reads as
// policy, not as missing data.
func idLine(label string, ids []int, total int) string {
	if len(ids) == 0 {
		return label + ": none."
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	if total > len(ids) {
		label += fmt.Sprintf(" (first %d of %d)", len(ids), total)
	}
	return label + ": " + strings.Join(parts, ", ") + "."
}

// fmtG formats a float at full precision, the bundle's archival rule:
// rendered numbers must survive a round-trip.
func fmtG(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
