package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fairrank/internal/dataset"
)

var updateGoldens = flag.Bool("update", false, "rewrite the renderer golden files")

// goldenBundles are deterministic, hand-built cohorts pinning the
// renderer edge cases: a policy that changes nobody's selection (empty
// beneficiary lists) and a one-object population (every section at its
// minimum size, margins infeasible). All three formats must agree on how
// such sections look — present, headered, explicitly empty — which is
// exactly what the goldens freeze.
func goldenBundles(t *testing.T) map[string]*Bundle {
	t.Helper()
	out := make(map[string]*Bundle)

	// Six objects with comfortable score gaps: a 0.25-point policy cannot
	// reorder anything, so the beneficiary lists are empty while every
	// other section carries data.
	b := dataset.NewBuilder([]string{"s"}, []string{"low_income", "ell"})
	scores := []float64{10, 8, 6, 4, 2, 1}
	li := []float64{1, 0, 1, 0, 0, 1}
	ell := []float64{0, 1, 0, 0, 1, 0}
	outcomes := []bool{true, false, true, false, true, false}
	for i, s := range scores {
		b.AddWithOutcome([]float64{s}, []float64{li[i], ell[i]}, outcomes[i])
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := BuildBundle(auditEvaluator(t, d), BundleConfig{
		Dataset:         "no-changes",
		Bonus:           []float64{0.25, 0.25},
		K:               0.5,
		IncludeFPR:      true,
		IncludeExposure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["empty_lists"] = bundle

	one := dataset.NewBuilder([]string{"s"}, []string{"low_income", "ell"})
	one.Add([]float64{5}, []float64{1, 0})
	od, err := one.Build()
	if err != nil {
		t.Fatal(err)
	}
	ob, err := BuildBundle(auditEvaluator(t, od), BundleConfig{
		Dataset: "singleton",
		Bonus:   []float64{1, 1},
		K:       1,
		Margins: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["one_object"] = ob
	return out
}

// TestBundleRenderGoldens pins the exact bytes of every renderer on the
// edge-case bundles. Regenerate with `go test ./internal/report/ -run
// Goldens -update` and review the diff like any other code change.
func TestBundleRenderGoldens(t *testing.T) {
	formats := []struct{ name, ext string }{
		{"json", "json"},
		{"csv", "csv"},
		{"markdown", "md"},
	}
	for name, b := range goldenBundles(t) {
		for _, f := range formats {
			t.Run(name+"/"+f.name, func(t *testing.T) {
				var buf bytes.Buffer
				if err := b.Render(&buf, f.name); err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", name+"."+f.ext+".golden")
				if *updateGoldens {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update): %v", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("%s output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
						f.name, path, buf.Bytes(), want)
				}
			})
		}
	}
}
