// Package report renders results for human and machine consumption: the
// aligned text tables and tab-separated series cmd/experiments uses to
// print the paper's tables and figure data, and the versioned audit
// bundles that publish a bonus-point policy.
//
// An audit bundle (Bundle, built by BuildBundle from a core.Evaluator) is
// the paper's transparency argument made operational: the published
// cutoff, every attribute's bonus points with its selection effect and
// leave-one-out share of the disparity reduction, the beneficiary and
// displaced lists, and exact counterfactual margins for the objects at
// the cutoff. Bundles render as JSON (archival), sectioned CSV
// (spreadsheet tooling), or Markdown (the policy document), and carry a
// schema version so archived bundles stay interpretable.
package report
