package report

import (
	"sync"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/rank"
	"fairrank/internal/synth"
)

// Audit-bundle benchmark at the same production scale as the sweep and
// counterfactual benchmarks: the 80k synthetic school cohort with a
// trained-shaped bonus vector. One BenchmarkBuildBundle80k op is a whole
// cold audit bundle — cutoff, policy lines with leave-one-out attribution,
// nDCG, beneficiary lists, and the counterfactual margin window — so its
// ns/op tracks the total ranking work a cold GET /v1/report pays. The name
// is guarded against regression by cmd/benchguard in CI (reference:
// BENCH_report.json).

var benchBundleState struct {
	once sync.Once
	ev   *core.Evaluator
	err  error
}

func benchBundleEvaluator(b testing.TB) *core.Evaluator {
	b.Helper()
	s := &benchBundleState
	s.once.Do(func() {
		cfg := synth.DefaultSchoolConfig() // 80k students, 4 fairness dims
		d, err := synth.GenerateSchool(cfg)
		if err != nil {
			s.err = err
			return
		}
		s.ev = core.NewEvaluator(d, rank.WeightedSum{Weights: synth.SchoolScoreWeights()}, rank.Beneficial)
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.ev
}

func BenchmarkBuildBundle80k(b *testing.B) {
	ev := benchBundleEvaluator(b)
	cfg := BundleConfig{
		Dataset: "school",
		Bonus:   []float64{2, 11, 10.5, 12.5}, // the shape a trained vector takes on this cohort
		K:       0.05,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildBundle(ev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
