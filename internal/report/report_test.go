package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"", "a", "b"},
	}
	tbl.AddFloatRow("row1", 1.5, -0.25)
	tbl.AddRow("row2", "x", "y")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "----", "row1", "1.5", "-0.25", "row2", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesRender(t *testing.T) {
	s := &Series{Title: "Fig", XName: "k", X: []float64{0.05, 0.1}}
	s.Add("norm", []float64{0.3, 0.2})
	s.Add("short", []float64{0.9}) // shorter series renders a dash
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig", "k", "norm", "short", "0.05", "0.3", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + underline + header + 2 data rows.
	if len(lines) != 5 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableRenderTSV(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var sb strings.Builder
	if err := tbl.RenderTSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# T\na\tb\n1\t2\n"
	if sb.String() != want {
		t.Errorf("TSV = %q, want %q", sb.String(), want)
	}
}

func TestSeriesRenderTSV(t *testing.T) {
	s := &Series{Title: "S", XName: "x", X: []float64{0.5}}
	s.Add("y", []float64{0.125})
	s.Add("short", nil)
	var sb strings.Builder
	if err := s.RenderTSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# S\nx\ty\tshort\n0.5\t0.125\t\n"
	if sb.String() != want {
		t.Errorf("TSV = %q, want %q", sb.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{-0.25, "-0.25"},
		{0.1234, "0.123"},
		{-0.0001, "0"}, // rounds to -0.000 -> trims to 0
		{12.5, "12.5"},
	}
	for _, tc := range cases {
		if got := Float(tc.in); got != tc.want {
			t.Errorf("Float(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if got := Float6(0.0000123); got != "0.000012" {
		t.Errorf("Float6 = %q", got)
	}
	if got := Float6(0.00899); got != "0.00899" {
		t.Errorf("Float6 = %q", got)
	}
}
