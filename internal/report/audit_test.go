package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/rank"
)

func auditDataset(t testing.TB, n int, outcomes bool) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	b := dataset.NewBuilder([]string{"s"}, []string{"low_income", "ell"})
	for i := 0; i < n; i++ {
		li := float64(rng.Intn(2))
		ell := 0.0
		if rng.Float64() < 0.2 {
			ell = 1
		}
		score := []float64{50 + 10*rng.NormFloat64() - 6*li - 4*ell}
		if outcomes {
			b.AddWithOutcome(score, []float64{li, ell}, rng.Float64() < 0.4)
		} else {
			b.Add(score, []float64{li, ell})
		}
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func auditEvaluator(t testing.TB, d *dataset.Dataset) *core.Evaluator {
	t.Helper()
	return core.NewEvaluator(d, rank.WeightedSum{Weights: []float64{1}}, rank.Beneficial)
}

// TestBuildBundleErrors covers every rejection of the bundle builder:
// empty dataset, missing/zero/mis-sized bonus policy, bad fraction,
// negative margins, and FPR without outcomes. Each must fail before any
// ranking work happens and carry a discoverable message.
func TestBuildBundleErrors(t *testing.T) {
	d := auditDataset(t, 500, false)
	ev := auditEvaluator(t, d)

	empty, err := dataset.New([]string{"s"}, []string{"g"}, [][]float64{{}}, [][]float64{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		ev   *core.Evaluator
		cfg  BundleConfig
		want string
	}{
		{"empty dataset", auditEvaluator(t, empty), BundleConfig{Bonus: []float64{1}, K: 0.1}, "empty dataset"},
		{"missing bonus", ev, BundleConfig{K: 0.1}, "missing bonus"},
		{"zero bonus", ev, BundleConfig{Bonus: []float64{0, 0}, K: 0.1}, "all zero"},
		{"mis-sized bonus", ev, BundleConfig{Bonus: []float64{1}, K: 0.1}, "dimensions"},
		{"bad fraction", ev, BundleConfig{Bonus: []float64{1, 2}, K: 0}, "fraction"},
		{"NaN fraction", ev, BundleConfig{Bonus: []float64{1, 2}, K: math.NaN()}, "fraction"},
		{"negative margins", ev, BundleConfig{Bonus: []float64{1, 2}, K: 0.1, Margins: -1}, "margins"},
		{"fpr without outcomes", ev, BundleConfig{Bonus: []float64{1, 2}, K: 0.1, IncludeFPR: true}, "outcomes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildBundle(tc.ev, tc.cfg)
			if err == nil {
				t.Fatalf("BuildBundle accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBuildBundleContents checks the assembled bundle against directly
// computed values: version, counts, cutoff consistency, policy lines,
// margin window shape and ordering.
func TestBuildBundleContents(t *testing.T) {
	d := auditDataset(t, 800, true)
	ev := auditEvaluator(t, d)
	bonus := []float64{5, 3}
	const k = 0.1
	b, err := BuildBundle(ev, BundleConfig{Dataset: "aud", Bonus: bonus, K: k, Margins: 4, IncludeFPR: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != BundleVersion || b.Dataset != "aud" || b.N != 800 || b.Polarity != "beneficial" {
		t.Errorf("metadata = %+v", b)
	}
	exp, err := ev.Explain(bonus, k)
	if err != nil {
		t.Fatal(err)
	}
	if b.Selected != exp.Selected || b.Cutoff != exp.Cutoff || b.BaseCutoff != exp.BaseCutoff {
		t.Errorf("cutoffs: bundle (%d %v %v) vs explanation (%d %v %v)",
			b.Selected, b.Cutoff, b.BaseCutoff, exp.Selected, exp.Cutoff, exp.BaseCutoff)
	}
	if len(b.Policy) != 2 || b.Policy[0].Attribute != "low_income" || b.Policy[0].Points != 5 {
		t.Errorf("policy = %+v", b.Policy)
	}
	for j, p := range b.Policy {
		if p.SelectedWith != exp.GroupCounts[j] || p.SelectedWithout != exp.BaseGroupCounts[j] {
			t.Errorf("policy counts[%d] = %+v, explanation %d/%d", j, p, exp.GroupCounts[j], exp.BaseGroupCounts[j])
		}
		if p.GroupSize != d.GroupSize(j) {
			t.Errorf("group size[%d] = %d, want %d", j, p.GroupSize, d.GroupSize(j))
		}
	}
	if len(b.FPRDiff) != 2 {
		t.Errorf("FPRDiff = %v, want 2 entries", b.FPRDiff)
	}
	if len(b.Margins) != 8 {
		t.Fatalf("margin window has %d lines, want 8", len(b.Margins))
	}
	for i, m := range b.Margins {
		if want := b.Selected - 4 + i; m.Rank != want {
			t.Errorf("margin %d rank = %d, want %d", i, m.Rank, want)
		}
		if want := m.Rank < b.Selected; m.Selected != want {
			t.Errorf("margin %d selected = %t, want %t", i, m.Selected, want)
		}
		// A selected boundary object exits by losing score; an excluded
		// one enters by gaining it.
		if m.Selected && m.ScoreDelta >= 0 || !m.Selected && m.ScoreDelta <= 0 {
			t.Errorf("margin %d: delta %v has wrong sign for selected=%t", i, m.ScoreDelta, m.Selected)
		}
	}
	if b.NormAfter >= b.NormBefore {
		t.Errorf("policy did not reduce disparity: %v -> %v", b.NormBefore, b.NormAfter)
	}
}

// TestBundleMarginWindowClamped: a margin window wider than the
// population must clamp, not panic.
func TestBundleMarginWindowClamped(t *testing.T) {
	d := auditDataset(t, 20, false)
	ev := auditEvaluator(t, d)
	b, err := BuildBundle(ev, BundleConfig{Dataset: "tiny", Bonus: []float64{2, 1}, K: 0.5, Margins: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Margins) != 20 {
		t.Errorf("clamped window has %d lines, want 20", len(b.Margins))
	}
}

// TestBundleBeneficiaryListsCapped: the id lists are truncated to
// MaxBeneficiaryIDs while the counts report the true totals, so a cached
// bundle cannot pin O(population) memory.
func TestBundleBeneficiaryListsCapped(t *testing.T) {
	d := auditDataset(t, 12000, false)
	ev := auditEvaluator(t, d)
	// A heavy-handed policy at a wide selection flips thousands of objects.
	b, err := BuildBundle(ev, BundleConfig{Dataset: "big", Bonus: []float64{30, 30}, K: 0.5, Margins: 1})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ev.Explain([]float64{30, 30}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if b.AdmittedCount != len(exp.AdmittedByBonus) || b.DisplacedCount != len(exp.DisplacedByBonus) {
		t.Errorf("counts %d/%d, explanation %d/%d",
			b.AdmittedCount, b.DisplacedCount, len(exp.AdmittedByBonus), len(exp.DisplacedByBonus))
	}
	if b.AdmittedCount <= MaxBeneficiaryIDs {
		t.Fatalf("test cohort flips only %d objects; raise the pressure", b.AdmittedCount)
	}
	if len(b.AdmittedByBonus) != MaxBeneficiaryIDs || len(b.DisplacedByBonus) != MaxBeneficiaryIDs {
		t.Errorf("id lists have %d/%d entries, want the %d cap",
			len(b.AdmittedByBonus), len(b.DisplacedByBonus), MaxBeneficiaryIDs)
	}
	for i, id := range b.AdmittedByBonus {
		if id != exp.AdmittedByBonus[i] {
			t.Fatalf("truncated list diverges at %d: %d vs %d", i, id, exp.AdmittedByBonus[i])
		}
	}
}

// TestBundleInfeasibleMargins: at k=1 nobody can be flipped; the margin
// lines must carry Feasible=false and the renderers must not present the
// zero deltas as "zero change flips".
func TestBundleInfeasibleMargins(t *testing.T) {
	d := auditDataset(t, 30, false)
	ev := auditEvaluator(t, d)
	b, err := BuildBundle(ev, BundleConfig{Dataset: "full", Bonus: []float64{2, 1}, K: 1, Margins: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Margins) == 0 {
		t.Fatal("no margin lines")
	}
	for i, m := range b.Margins {
		if m.Feasible {
			t.Errorf("margin %d feasible at k=1", i)
		}
	}
	var md bytes.Buffer
	if err := b.RenderMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "unflippable") {
		t.Error("markdown renders infeasible margins without marking them")
	}
	var cb bytes.Buffer
	if err := b.RenderCSV(&cb); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&cb)
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row[0] == "margin" && row[1] != "object" {
			if row[5] != "" || row[7] != "false" {
				t.Errorf("infeasible CSV margin row = %v, want empty delta and feasible=false", row)
			}
		}
	}
}

// TestBundleRenderJSONRoundTrip: the JSON form must decode back into an
// equivalent bundle (the archival contract).
func TestBundleRenderJSONRoundTrip(t *testing.T) {
	d := auditDataset(t, 400, true)
	ev := auditEvaluator(t, d)
	b, err := BuildBundle(ev, BundleConfig{Dataset: "aud", Bonus: []float64{5, 3}, K: 0.1, IncludeFPR: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Bundle
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip decode: %v\n%s", err, buf.String())
	}
	if back.Version != b.Version || back.Selected != b.Selected || back.Cutoff != b.Cutoff ||
		len(back.Policy) != len(b.Policy) || len(back.Margins) != len(b.Margins) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", back, *b)
	}
	if back.Margins[0].ScoreDelta != b.Margins[0].ScoreDelta {
		t.Errorf("full-precision delta lost in JSON: %v vs %v", back.Margins[0].ScoreDelta, b.Margins[0].ScoreDelta)
	}
}

// TestBundleRenderCSV: sectioned CSV must parse with encoding/csv and
// carry every section.
func TestBundleRenderCSV(t *testing.T) {
	d := auditDataset(t, 400, true)
	ev := auditEvaluator(t, d)
	b, err := BuildBundle(ev, BundleConfig{Dataset: "aud", Bonus: []float64{5, 3}, K: 0.1, IncludeFPR: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	r.FieldsPerRecord = -1 // sections have different widths
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	sections := map[string]int{}
	for _, row := range rows {
		sections[row[0]]++
	}
	for _, want := range []string{"meta", "policy", "fpr", "margin"} {
		if sections[want] == 0 {
			t.Errorf("CSV missing section %q (got %v)", want, sections)
		}
	}
	if sections["policy"] != 3 { // header + 2 attributes
		t.Errorf("policy section has %d rows, want 3", sections["policy"])
	}
}

// TestBundleRenderMarkdown: the human-readable form must include the
// policy table, the cutoff, and the margin table.
func TestBundleRenderMarkdown(t *testing.T) {
	d := auditDataset(t, 400, false)
	ev := auditEvaluator(t, d)
	b, err := BuildBundle(ev, BundleConfig{Dataset: "aud", Bonus: []float64{5, 3}, K: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Fair-ranking audit bundle (v" + BundleVersion + ")",
		"## Policy", "| low_income | 5 |", "| ell | 3 |",
		"Published cutoff", "## Counterfactual margins",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "False-positive") {
		t.Error("markdown includes FPR section without outcomes")
	}
}

// TestBundleRenderDispatch covers the format dispatcher including its
// error path.
func TestBundleRenderDispatch(t *testing.T) {
	d := auditDataset(t, 100, false)
	ev := auditEvaluator(t, d)
	b, err := BuildBundle(ev, BundleConfig{Dataset: "aud", Bonus: []float64{2, 1}, K: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"json", "csv", "markdown", "md"} {
		var buf bytes.Buffer
		if err := b.Render(&buf, f); err != nil {
			t.Errorf("Render(%q): %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("Render(%q) wrote nothing", f)
		}
	}
	if err := b.Render(&bytes.Buffer{}, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
