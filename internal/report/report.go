package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Table is a simple header + rows text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a label cell followed by formatted floats.
func (t *Table) AddFloatRow(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, Float(v))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Headers) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// RenderTSV writes the table as tab-separated values without the title
// underline decoration, for piping into plotting tools.
func (t *Table) RenderTSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if len(t.Headers) > 0 {
		if _, err := fmt.Fprintln(w, strings.Join(t.Headers, "\t")); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Series is figure data: a shared X axis and one or more named Y series.
type Series struct {
	Title string
	XName string
	X     []float64
	Names []string
	Y     [][]float64 // Y[s][i] = series s at X[i]
}

// Add appends a named series; its length must match X.
func (s *Series) Add(name string, ys []float64) {
	s.Names = append(s.Names, name)
	s.Y = append(s.Y, ys)
}

// Render writes the series as an aligned matrix with one row per X value,
// the form the paper's figures plot.
func (s *Series) Render(w io.Writer) error {
	if s.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", s.Title, strings.Repeat("-", len(s.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t%s\n", s.XName, strings.Join(s.Names, "\t"))
	for i, x := range s.X {
		cells := make([]string, 0, len(s.Y)+1)
		cells = append(cells, Float(x))
		for _, ys := range s.Y {
			if i < len(ys) {
				cells = append(cells, Float(ys[i]))
			} else {
				cells = append(cells, "-")
			}
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	return tw.Flush()
}

// RenderTSV writes the series as tab-separated values, full float
// precision, for piping into plotting tools.
func (s *Series) RenderTSV(w io.Writer) error {
	if s.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", s.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s\t%s\n", s.XName, strings.Join(s.Names, "\t")); err != nil {
		return err
	}
	for i, x := range s.X {
		cells := make([]string, 0, len(s.Y)+1)
		cells = append(cells, strconv.FormatFloat(x, 'g', -1, 64))
		for _, ys := range s.Y {
			if i < len(ys) {
				cells = append(cells, strconv.FormatFloat(ys[i], 'g', -1, 64))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// TSVRenderer is implemented by results that can emit machine-readable
// tab-separated output in addition to the human-readable form.
type TSVRenderer interface {
	RenderTSV(w io.Writer) error
}

// Float6 formats a float with six decimal places (for tiny magnitudes
// such as DDP values), trimming trailing zeros.
func Float6(v float64) string {
	s := strconv.FormatFloat(v, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" || s == "-0" {
		return "0"
	}
	return s
}

// Float formats a float compactly with three decimal places, trimming
// trailing zeros on round values.
func Float(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" || s == "-0" {
		return "0"
	}
	return s
}
