package report

import (
	"slices"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/rank"
)

// pointwiseBundle assembles the audit bundle exactly the way BuildBundle
// did before the BundleData rewrite: one independent pointwise evaluator
// call per quantity (Explain, AttributeDisparity, NDCG, FPRDiff, and a
// counterfactual batch over the boundary window of the full sorted
// order). It exists only as the differential reference; every field it
// produces must be reproduced bit for bit by the rank-once path.
func pointwiseBundle(t testing.TB, ev *core.Evaluator, cfg BundleConfig) *Bundle {
	t.Helper()
	d := ev.Dataset()
	margins := cfg.Margins
	if margins == 0 {
		margins = DefaultMargins
	}
	exp, err := ev.Explain(cfg.Bonus, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	att, err := ev.AttributeDisparity(cfg.Bonus, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	ndcg, err := ev.NDCG(cfg.Bonus, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	b := &Bundle{
		Version:          BundleVersion,
		Dataset:          cfg.Dataset,
		N:                d.N(),
		Polarity:         ev.Polarity().String(),
		K:                cfg.K,
		Selected:         exp.Selected,
		Cutoff:           exp.Cutoff,
		BaseCutoff:       exp.BaseCutoff,
		NormBefore:       att.NormBase,
		NormAfter:        att.NormFull,
		NDCG:             ndcg,
		AdmittedCount:    len(exp.AdmittedByBonus),
		DisplacedCount:   len(exp.DisplacedByBonus),
		AdmittedByBonus:  capIDs(exp.AdmittedByBonus),
		DisplacedByBonus: capIDs(exp.DisplacedByBonus),
	}
	b.Policy = make([]PolicyLine, d.NumFair())
	for j := range b.Policy {
		b.Policy[j] = PolicyLine{
			Attribute:       exp.FairNames[j],
			Points:          cfg.Bonus[j],
			GroupSize:       d.GroupSize(j),
			SelectedWith:    exp.GroupCounts[j],
			SelectedWithout: exp.BaseGroupCounts[j],
			LeaveOneOutNorm: att.LeaveOneOut[j],
			Contribution:    att.Contribution[j],
		}
	}
	if cfg.IncludeFPR {
		if b.FPRDiff, err = ev.FPRDiff(cfg.Bonus, cfg.K); err != nil {
			t.Fatal(err)
		}
	}
	cnt, err := rank.SelectCount(d.N(), cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := cnt-margins, cnt+margins
	if lo < 0 {
		lo = 0
	}
	if hi > d.N() {
		hi = d.N()
	}
	window := append([]int(nil), ev.Order(cfg.Bonus)[lo:hi]...)
	cfs, err := ev.CounterfactualBatch(cfg.Bonus, cfg.K, window)
	if err != nil {
		t.Fatal(err)
	}
	b.Margins = make([]MarginLine, len(cfs))
	for i, cf := range cfs {
		b.Margins[i] = MarginLine{
			Object:     cf.Object,
			Rank:       cf.Rank,
			Selected:   cf.Selected,
			Effective:  cf.Effective,
			ScoreDelta: cf.ScoreDelta,
			BonusDelta: cf.BonusDelta,
			Feasible:   cf.Feasible,
		}
	}
	return b
}

// requireBundlesIdentical compares two bundles field by field with exact
// (bit-level) float equality.
func requireBundlesIdentical(t *testing.T, got, want *Bundle) {
	t.Helper()
	if got.Version != want.Version || got.Dataset != want.Dataset || got.N != want.N ||
		got.Polarity != want.Polarity || got.K != want.K || got.Selected != want.Selected {
		t.Errorf("metadata: got %+v, want %+v", got, want)
	}
	if got.Cutoff != want.Cutoff || got.BaseCutoff != want.BaseCutoff {
		t.Errorf("cutoffs: got (%v, %v), want (%v, %v)", got.Cutoff, got.BaseCutoff, want.Cutoff, want.BaseCutoff)
	}
	if got.NormBefore != want.NormBefore || got.NormAfter != want.NormAfter || got.NDCG != want.NDCG {
		t.Errorf("norms: got (%v, %v, %v), want (%v, %v, %v)",
			got.NormBefore, got.NormAfter, got.NDCG, want.NormBefore, want.NormAfter, want.NDCG)
	}
	if !slices.Equal(got.Policy, want.Policy) {
		t.Errorf("policy: got %+v, want %+v", got.Policy, want.Policy)
	}
	if !slices.Equal(got.FPRDiff, want.FPRDiff) {
		t.Errorf("fpr: got %v, want %v", got.FPRDiff, want.FPRDiff)
	}
	if got.AdmittedCount != want.AdmittedCount || got.DisplacedCount != want.DisplacedCount ||
		!slices.Equal(got.AdmittedByBonus, want.AdmittedByBonus) ||
		!slices.Equal(got.DisplacedByBonus, want.DisplacedByBonus) {
		t.Errorf("beneficiaries: got %d/%d, want %d/%d",
			got.AdmittedCount, got.DisplacedCount, want.AdmittedCount, want.DisplacedCount)
	}
	if !slices.Equal(got.Margins, want.Margins) {
		t.Errorf("margins: got %+v, want %+v", got.Margins, want.Margins)
	}
}

// TestBuildBundleBitIdentical is the differential harness of the
// BundleData rewrite: on representative cohorts (outcomes, tied scores,
// adverse polarity, sparse bonus vectors, one-object populations) the
// rank-once BuildBundle must reproduce the one-evaluator-call-per-field
// assembly bit for bit.
func TestBuildBundleBitIdentical(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		outcomes bool
		cfg      BundleConfig
	}{
		{"default margins", 900, true, BundleConfig{Dataset: "a", Bonus: []float64{5, 3}, K: 0.1, IncludeFPR: true}},
		{"wide margins", 900, true, BundleConfig{Dataset: "b", Bonus: []float64{5, 3}, K: 0.1, Margins: 40}},
		{"sparse bonus", 500, false, BundleConfig{Dataset: "c", Bonus: []float64{0, 7}, K: 0.05, Margins: 3}},
		{"k covers everyone", 300, false, BundleConfig{Dataset: "d", Bonus: []float64{2, 1}, K: 1, Margins: 2}},
		{"one object", 1, false, BundleConfig{Dataset: "e", Bonus: []float64{1, 1}, K: 1, Margins: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := auditDataset(t, tc.n, tc.outcomes)
			ev := auditEvaluator(t, d)
			got, err := BuildBundle(ev, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireBundlesIdentical(t, got, pointwiseBundle(t, ev, tc.cfg))
		})
	}
}

// TestBuildBundleRankingBudget80k is the acceptance gate of the merge
// ranking: on the production-scale 80k school cohort (4 fairness
// dimensions, combo-run partition available) a cold bundle must perform
// ZERO full-population ranking passes — every distinct order it needs
// (one compensated prefix plus one leave-one-out prefix per non-zero
// bonus dimension; the base order is cached and free) is answered by
// the combo-run merge, measured through the RankingCount/MergeCount
// hooks.
func TestBuildBundleRankingBudget80k(t *testing.T) {
	if testing.Short() {
		t.Skip("80k cohort generation in -short mode")
	}
	ev := benchBundleEvaluator(t)
	dims := ev.Dataset().NumFair()
	if _, ok := ev.RunStats(); !ok {
		t.Fatal("school cohort built no combo runs; merge path unavailable")
	}
	beforeRank, beforeMerge := ev.RankingCount(), ev.MergeCount()
	if _, err := BuildBundle(ev, BundleConfig{
		Dataset: "school",
		Bonus:   []float64{2, 11, 10.5, 12.5},
		K:       0.05,
	}); err != nil {
		t.Fatal(err)
	}
	if got := ev.RankingCount() - beforeRank; got != 0 {
		t.Errorf("cold bundle performed %d full-population rankings, expected 0 (merge path)", got)
	}
	merges := ev.MergeCount() - beforeMerge
	if want := int64(dims + 1); merges != want {
		t.Errorf("cold bundle performed %d merges, expected exactly %d (one compensated + dims leave-one-out)", merges, want)
	}
}
