package metrics

import (
	"fmt"
	"math"

	"fairrank/internal/dataset"
)

// This file implements the rank-fairness measure family of Yang &
// Stoyanovich ("Measuring fairness in ranked outputs", SSDBM 2017) — the
// paper's reference [3] and the source of its logarithmic discounting.
// All three measures aggregate a per-prefix set-fairness quantity over
// cut points {10%, 20%, ...} with 1/log2(i+1) discounts and normalize by
// the maximum attainable value, yielding scores in [0, 1] where 0 is
// perfectly fair. They complement the disparity vector as external
// referees for DCA's output: a bonus vector trained on disparity should
// also shrink rND/rKL/rRD.

// YangStoyanovich evaluates the measure family for one binary protected
// attribute over prefix cut points.
type YangStoyanovich struct {
	// Points are the evaluation fractions (DefaultPoints(0.1, 1) in the
	// original formulation).
	Points []float64
}

// RND is the normalized discounted difference: at each cut point, the
// absolute difference between the protected share of the prefix and the
// protected share of the population.
func (ys YangStoyanovich) RND(d *dataset.Dataset, order []int, col int) (float64, error) {
	return ys.eval(d, order, col, func(prefShare, popShare float64, _ int) float64 {
		return math.Abs(prefShare - popShare)
	})
}

// RKL is the discounted KL-divergence between the per-prefix membership
// distribution and the population distribution.
func (ys YangStoyanovich) RKL(d *dataset.Dataset, order []int, col int) (float64, error) {
	return ys.eval(d, order, col, func(prefShare, popShare float64, _ int) float64 {
		return klBernoulli(prefShare, popShare)
	})
}

// RRD is the normalized discounted ratio difference: the absolute
// difference between the protected/unprotected ratio in the prefix and in
// the population (0 when either prefix class is empty, following the
// original definition).
func (ys YangStoyanovich) RRD(d *dataset.Dataset, order []int, col int) (float64, error) {
	return ys.eval(d, order, col, func(prefShare, popShare float64, _ int) float64 {
		prefRatio := ratioOf(prefShare)
		popRatio := ratioOf(popShare)
		if math.IsInf(prefRatio, 0) || math.IsInf(popRatio, 0) {
			return 0
		}
		return math.Abs(prefRatio - popRatio)
	})
}

func ratioOf(share float64) float64 {
	if share <= 0 {
		return 0
	}
	if share >= 1 {
		return math.Inf(1)
	}
	return share / (1 - share)
}

// klBernoulli returns KL(p || q) for Bernoulli distributions, with the
// conventional 0·log(0) = 0 and a small floor on q to keep the measure
// finite when the population is degenerate.
func klBernoulli(p, q float64) float64 {
	const eps = 1e-12
	q = math.Min(math.Max(q, eps), 1-eps)
	var kl float64
	if p > 0 {
		kl += p * math.Log2(p/q)
	}
	if p < 1 {
		kl += (1 - p) * math.Log2((1-p)/(1-q))
	}
	if kl < 0 {
		kl = 0 // numeric noise
	}
	return kl
}

// eval aggregates a per-prefix divergence with log discounts, normalized
// by the maximum attainable value of the same aggregate (computed on the
// worst ordering: all unprotected first or all protected first, whichever
// diverges more at each cut point).
func (ys YangStoyanovich) eval(d *dataset.Dataset, order []int, col int, div func(prefShare, popShare float64, prefLen int) float64) (float64, error) {
	if len(ys.Points) == 0 {
		return 0, fmt.Errorf("metrics: Yang-Stoyanovich with no cut points")
	}
	n := len(order)
	if n == 0 {
		return 0, nil
	}
	column := d.FairColumn(col)
	var popCount int
	for _, i := range order {
		if column[i] > 0.5 {
			popCount++
		}
	}
	popShare := float64(popCount) / float64(n)

	var raw, zMax float64
	protSoFar := 0
	prefix := 0
	for _, f := range ys.Points {
		cut, err := prefixCount(n, f)
		if err != nil {
			return 0, err
		}
		for prefix < cut {
			if column[order[prefix]] > 0.5 {
				protSoFar++
			}
			prefix++
		}
		w := 1 / math.Log2(f*100+1)
		raw += w * div(float64(protSoFar)/float64(prefix), popShare, prefix)
		// Worst case at this cut point: prefix entirely protected or
		// entirely unprotected, bounded by availability.
		maxProt := minInt(prefix, popCount)
		minProt := maxInt(0, prefix-(n-popCount))
		worst := math.Max(
			div(float64(maxProt)/float64(prefix), popShare, prefix),
			div(float64(minProt)/float64(prefix), popShare, prefix),
		)
		zMax += w * worst
	}
	if zMax == 0 {
		return 0, nil
	}
	v := raw / zMax
	if v > 1 {
		v = 1
	}
	return v, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
