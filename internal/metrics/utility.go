package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrZeroIdealDCG is returned by NDCG when the ideal ranking has zero DCG
// at the requested cut, which makes normalization undefined.
var ErrZeroIdealDCG = errors.New("metrics: NDCG ideal DCG is zero")

// DCG returns the discounted cumulative gain of the first k positions of
// the ranking order (object indices, best first) with gains taken from the
// uncompensated base scores: Σ_{i=1..k} gain(order[i]) / log2(i+1).
func DCG(gains []float64, order []int, k int) float64 {
	if k > len(order) {
		k = len(order)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += gains[order[i]] / math.Log2(float64(i)+2)
	}
	return s
}

// NDCG returns the normalized DCG at the top k positions of the
// compensated ranking, with the *original* (uncompensated) ranking as the
// ideal, following the paper's utility definition: 1 means the fairness
// compensation did not change the ranking at all.
//
// gains are the base scores; corrected and original are descending-order
// index permutations of the same population.
func NDCG(gains []float64, corrected, original []int, k int) (float64, error) {
	if len(corrected) != len(original) {
		return 0, fmt.Errorf("metrics: NDCG rankings of length %d vs %d", len(corrected), len(original))
	}
	if k <= 0 {
		return 0, fmt.Errorf("metrics: NDCG with k=%d", k)
	}
	ideal := DCG(gains, original, k)
	if ideal == 0 {
		return 0, ErrZeroIdealDCG
	}
	return DCG(gains, corrected, k) / ideal, nil
}

// NDCGAtFrac is NDCG with k expressed as a fraction of the population, the
// nDCG@k of Figures 1 and 2.
func NDCGAtFrac(gains []float64, corrected, original []int, frac float64) (float64, error) {
	k, err := prefixCount(len(original), frac)
	if err != nil {
		return 0, err
	}
	return NDCG(gains, corrected, original, k)
}
