package metrics

import (
	"fairrank/internal/dataset"
)

// DisparateImpact returns the paper's scaled disparate-impact vector
// (Section VI-C5). For each binary fairness attribute F the Zafar et al.
// ratio min(P(O=1|F=0)/P(O=1|F=1), P(O=1|F=1)/P(O=1|F=0)) lies in (0, 1]
// with 1 meaning parity; it is rescaled to [-1, 1] as
// sign(P(O=1|F=1) - P(O=1|F=0)) * (1 - ratio) so that 0 means parity and
// the sign gives the direction of the impact, matching DCA's objective
// contract. Attributes where either group is empty or no one is selected
// contribute 0.
func DisparateImpact(d *dataset.Dataset, selected []int) []float64 {
	return DisparateImpactWithin(d, allIndices(d.N()), selected)
}

// DisparateImpactWithin is DisparateImpact computed over the sub-population
// sampleIdx only, with selIdx ⊆ sampleIdx the selected objects. DCA uses it
// to evaluate the objective on small samples.
func DisparateImpactWithin(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return DisparateImpactWithinInto(d, sampleIdx, selIdx, make([]bool, d.N()), make([]float64, d.NumFair()))
}

// DisparateImpactWithinInto is the in-place variant of
// DisparateImpactWithin: mark is an all-false membership scratch indexed by
// absolute object id (length N, left all-false on return) and dst receives
// the impact vector (length NumFair). It allocates nothing and returns dst.
func DisparateImpactWithinInto(d *dataset.Dataset, sampleIdx, selIdx []int, mark []bool, dst []float64) []float64 {
	dims := d.NumFair()
	out := dst
	for j := range out {
		out[j] = 0
	}
	if len(sampleIdx) == 0 {
		return out
	}
	isSel := mark
	for _, i := range selIdx {
		isSel[i] = true
	}
	for j := 0; j < dims; j++ {
		col := d.FairColumn(j)
		var selWith, totWith, selWithout, totWithout int
		for _, i := range sampleIdx {
			if col[i] > 0.5 {
				totWith++
				if isSel[i] {
					selWith++
				}
			} else {
				totWithout++
				if isSel[i] {
					selWithout++
				}
			}
		}
		out[j] = ImpactFromCounts(selWith, totWith, selWithout, totWithout)
	}
	for _, i := range selIdx {
		isSel[i] = false
	}
	return out
}

// ImpactFromCounts is the scalar disparate-impact formula over the four
// selection counts of one binary attribute: members selected / total, and
// non-members selected / total. It is the single implementation behind
// DisparateImpactWithinInto and the prefix-sweep path, so both produce
// bit-identical values from equal counts. An empty group on either side
// means the attribute contributes 0.
func ImpactFromCounts(selWith, totWith, selWithout, totWithout int) float64 {
	if totWith == 0 || totWithout == 0 {
		return 0
	}
	pWith := float64(selWith) / float64(totWith)
	pWithout := float64(selWithout) / float64(totWithout)
	switch {
	case pWith == 0 && pWithout == 0:
		return 0 // no one selected in either group: parity
	case pWith == 0:
		return -1
	case pWithout == 0:
		return 1
	}
	ratio := pWithout / pWith
	if ratio > 1 {
		ratio = 1 / ratio
	}
	if pWith >= pWithout {
		return 1 - ratio
	}
	return -(1 - ratio)
}

// FPRDiff returns, for each binary fairness attribute, the group false
// positive rate minus the overall false positive rate. A "false positive"
// is an object that was selected (flagged) although its ground-truth
// outcome is false — the COMPAS criticism the paper revisits in Figure 10b.
// The dataset must carry outcomes. Each dimension lies in [-1, 1]; 0 means
// the group's FPR equals the population's.
func FPRDiff(d *dataset.Dataset, selected []int) []float64 {
	return FPRDiffWithin(d, allIndices(d.N()), selected)
}

// FPRDiffWithin is FPRDiff computed over the sub-population sampleIdx only,
// with selIdx ⊆ sampleIdx the flagged objects.
func FPRDiffWithin(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return FPRDiffWithinInto(d, sampleIdx, selIdx, make([]bool, d.N()), make([]float64, d.NumFair()))
}

// FPRDiffWithinInto is the in-place variant of FPRDiffWithin: mark is an
// all-false membership scratch indexed by absolute object id (length N,
// left all-false on return) and dst receives the FPR-difference vector
// (length NumFair). It allocates nothing and returns dst.
func FPRDiffWithinInto(d *dataset.Dataset, sampleIdx, selIdx []int, mark []bool, dst []float64) []float64 {
	dims := d.NumFair()
	out := dst
	for j := range out {
		out[j] = 0
	}
	if len(sampleIdx) == 0 || !d.HasOutcomes() {
		return out
	}
	isSel := mark
	for _, i := range selIdx {
		isSel[i] = true
	}
	var fpAll, negAll int
	for _, i := range sampleIdx {
		if !d.Outcome(i) {
			negAll++
			if isSel[i] {
				fpAll++
			}
		}
	}
	if negAll > 0 {
		overall := float64(fpAll) / float64(negAll)
		for j := 0; j < dims; j++ {
			col := d.FairColumn(j)
			var fp, neg int
			for _, i := range sampleIdx {
				if col[i] > 0.5 && !d.Outcome(i) {
					neg++
					if isSel[i] {
						fp++
					}
				}
			}
			if neg == 0 {
				continue
			}
			out[j] = float64(fp)/float64(neg) - overall
		}
	}
	for _, i := range selIdx {
		isSel[i] = false
	}
	return out
}

// allIndices returns {0, ..., n-1}.
func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// GroupFPR returns the false positive rate of the members of binary
// fairness attribute j under the given selection, and the count of
// ground-truth-negative members it is based on.
func GroupFPR(d *dataset.Dataset, selected []int, j int) (fpr float64, negatives int) {
	if !d.HasOutcomes() {
		return 0, 0
	}
	isSel := make([]bool, d.N())
	for _, i := range selected {
		isSel[i] = true
	}
	col := d.FairColumn(j)
	var fp int
	for i, v := range col {
		if v > 0.5 && !d.Outcome(i) {
			negatives++
			if isSel[i] {
				fp++
			}
		}
	}
	if negatives == 0 {
		return 0, 0
	}
	return float64(fp) / float64(negatives), negatives
}
