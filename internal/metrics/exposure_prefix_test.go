package metrics

import (
	"errors"
	"math/rand"
	"testing"

	"fairrank/internal/dataset"
)

// binaryPrefixDataset builds a cohort with binary fairness attributes only
// (the exposure metrics' contract), scores noisy enough that the ranking
// shuffles group members across positions.
func binaryPrefixDataset(t *testing.T, n int, seed int64) (*dataset.Dataset, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder([]string{"s"}, []string{"a", "b", "c"})
	order := make([]int, n)
	for i := 0; i < n; i++ {
		score := []float64{rng.NormFloat64()}
		fair := []float64{float64(rng.Intn(2)), float64(rng.Intn(2)), float64(rng.Intn(2))}
		b.Add(score, fair)
		order[i] = i
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return d, order
}

// TestPrefixExposureBitIdentical pins the columnar prefix aggregator to
// the closure-based reference: each group's row entry resumes the exact
// position-order fold Exposure computes over order[:cut], including the
// trailing rest group.
func TestPrefixExposureBitIdentical(t *testing.T) {
	d, order := binaryPrefixDataset(t, 400, 1)
	cuts := []int{1, 2, 37, 38, 200, 399, 400}
	rows := PrefixExposure(d, order, cuts)
	g := d.NumFair() + 1
	for c, cut := range cuts {
		for j := 0; j < d.NumFair(); j++ {
			col := d.FairColumn(j)
			want := Exposure(order[:cut], func(i int) bool { return col[i] > 0.5 })
			if rows[c][j] != want {
				t.Errorf("cut %d group %d: prefix %v != Exposure %v (not bit-identical)", cut, j, rows[c][j], want)
			}
		}
		rest := Exposure(order[:cut], func(i int) bool {
			for j := 0; j < d.NumFair(); j++ {
				if d.Fair(i, j) > 0.5 {
					return false
				}
			}
			return true
		})
		if rows[c][g-1] != rest {
			t.Errorf("cut %d rest group: prefix %v != Exposure %v", cut, rows[c][g-1], rest)
		}
	}
}

func TestPrefixExposureCountsMatchesScan(t *testing.T) {
	d, order := binaryPrefixDataset(t, 300, 2)
	cuts := []int{1, 5, 150, 300}
	rows := PrefixExposureCounts(d, order, cuts)
	g := d.NumFair() + 1
	for c, cut := range cuts {
		wantRest := 0
		for _, i := range order[:cut] {
			inAny := false
			for j := 0; j < d.NumFair(); j++ {
				if d.Fair(i, j) > 0.5 {
					inAny = true
				}
			}
			if !inAny {
				wantRest++
			}
		}
		if rows[c][g-1] != wantRest {
			t.Errorf("cut %d: rest count %d != %d", cut, rows[c][g-1], wantRest)
		}
		for j := 0; j < d.NumFair(); j++ {
			col := d.FairColumn(j)
			want := 0
			for _, i := range order[:cut] {
				if col[i] > 0.5 {
					want++
				}
			}
			if rows[c][j] != want {
				t.Errorf("cut %d group %d: count %d != %d", cut, j, rows[c][j], want)
			}
		}
	}
}

// TestDDPFinishersBitIdentical pins the three DDP forms to each other at
// every cut of a random ranking: the pointwise DDP over the prefix slice,
// the finisher over prefix-resumed sums, and the per-capita recovery the
// row cache depends on.
func TestDDPFinishersBitIdentical(t *testing.T) {
	d, order := binaryPrefixDataset(t, 350, 3)
	fairCols := []int{0, 1, 2}
	cuts := []int{1, 2, 50, 173, 350}
	expo := PrefixExposure(d, order, cuts)
	sizes := PrefixExposureCounts(d, order, cuts)
	g := d.NumFair() + 1
	pc := make([]float64, g)
	for c, cut := range cuts {
		want, wantErr := DDP(d, order[:cut], fairCols)
		got, gotErr := DDPFromExposure(expo[c], sizes[c])
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("cut %d: DDP err %v, DDPFromExposure err %v", cut, wantErr, gotErr)
		}
		if wantErr == nil && got != want {
			t.Errorf("cut %d: DDPFromExposure %v != DDP %v (not bit-identical)", cut, got, want)
		}
		ExposurePerCapitaInto(expo[c], sizes[c], pc)
		got2, err2 := DDPFromPerCapita(pc)
		if (wantErr == nil) != (err2 == nil) {
			t.Fatalf("cut %d: DDP err %v, DDPFromPerCapita err %v", cut, wantErr, err2)
		}
		if wantErr == nil && got2 != want {
			t.Errorf("cut %d: DDPFromPerCapita %v != DDP %v (not bit-identical)", cut, got2, want)
		}
	}
}

func TestDDPFinisherDegenerate(t *testing.T) {
	// One populated group out of three.
	if _, err := DDPFromExposure([]float64{1.5, 0, 0}, []int{2, 0, 0}); !errors.Is(err, ErrDegenerateGroups) {
		t.Errorf("single populated group: err = %v, want ErrDegenerateGroups", err)
	}
	// No populated group at all (empty prefix).
	if _, err := DDPFromExposure([]float64{0, 0}, []int{0, 0}); !errors.Is(err, ErrDegenerateGroups) {
		t.Errorf("no populated group: err = %v, want ErrDegenerateGroups", err)
	}
	if _, err := DDPFromPerCapita([]float64{0.7, 0, 0}); !errors.Is(err, ErrDegenerateGroups) {
		t.Errorf("per-capita single group: err = %v, want ErrDegenerateGroups", err)
	}
	if got, err := DDPFromExposure([]float64{1, 0.5}, []int{1, 1}); err != nil || got != 0.5 {
		t.Errorf("two groups: got %v, %v; want 0.5, nil", got, err)
	}
}

func TestExpRatioAndTopKFromCounts(t *testing.T) {
	// Zero denominators all map to 0, mirroring the FPR convention.
	if got := ExpRatioFromCounts(1.5, 0, 3, 10); got != 0 {
		t.Errorf("group absent from prefix: %v, want 0", got)
	}
	if got := ExpRatioFromCounts(1.5, 2, 0, 10); got != 0 {
		t.Errorf("no positive outcomes: %v, want 0", got)
	}
	if got := ExpRatioFromCounts(1.5, 2, 3, 0); got != 0 {
		t.Errorf("empty group: %v, want 0", got)
	}
	// (1.5/2) / (3/10) = 0.75 / 0.3 = 2.5
	if got := ExpRatioFromCounts(1.5, 2, 3, 10); got != 2.5 {
		t.Errorf("ExpRatioFromCounts = %v, want 2.5", got)
	}
	if got := TopKFromCounts(3, 4, 10, 100); got != 3.0/4-10.0/100 {
		t.Errorf("TopKFromCounts = %v, want %v", got, 3.0/4-10.0/100)
	}
	if got := TopKFromCounts(0, 0, 10, 100); got != 0 {
		t.Errorf("empty prefix: %v, want 0", got)
	}
}

// TestPrefixExposureIntoAllocs pins the zero-allocation contract of the
// Into variants (the fairlint intoalloc invariant).
func TestPrefixExposureIntoAllocs(t *testing.T) {
	d, order := binaryPrefixDataset(t, 200, 4)
	cuts := []int{10, 50, 200}
	g := d.NumFair() + 1
	sum := make([]float64, g)
	dst := make([]float64, len(cuts)*g)
	cnt := make([]int, len(cuts)*g)
	if allocs := testing.AllocsPerRun(10, func() {
		PrefixExposureInto(d, order, cuts, sum, dst)
	}); allocs != 0 {
		t.Errorf("PrefixExposureInto allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		PrefixExposureCountsInto(d, order, cuts, cnt)
	}); allocs != 0 {
		t.Errorf("PrefixExposureCountsInto allocates %v per run, want 0", allocs)
	}
}
