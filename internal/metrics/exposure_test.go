package metrics

import (
	"errors"
	"math"
	"testing"

	"fairrank/internal/dataset"
)

// exposureDataset builds a two-binary-attribute cohort from row-major
// fairness rows: rows[i] = {A, B} for object i.
func exposureDataset(t *testing.T, rows [][2]float64) *dataset.Dataset {
	t.Helper()
	n := len(rows)
	score := make([]float64, n)
	colA := make([]float64, n)
	colB := make([]float64, n)
	for i, r := range rows {
		score[i] = float64(i)
		colA[i] = r[0]
		colB[i] = r[1]
	}
	d, err := dataset.New([]string{"s"}, []string{"A", "B"},
		[][]float64{score}, [][]float64{colA, colB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExposureWorkedExample(t *testing.T) {
	// Ranking positions carry weights 1/log2(pos+2):
	//   pos 0 -> 1/log2(2) = 1, pos 1 -> 1/log2(3), pos 2 -> 1/log2(4) = 0.5,
	//   pos 3 -> 1/log2(5).
	// Members {5, 4} sit at positions 0 and 2, so their exposure is
	// exactly 1 + 0.5 = 1.5 — the two dyadic positions, no rounding.
	order := []int{5, 1, 4, 0}
	member := func(i int) bool { return i == 5 || i == 4 }
	if got := Exposure(order, member); got != 1.5 {
		t.Errorf("Exposure = %v, want exactly 1.5", got)
	}

	// Members at positions 1 and 3 get the irrational weights.
	other := func(i int) bool { return i == 1 || i == 0 }
	want := 1/math.Log2(3) + 1/math.Log2(5)
	if got := Exposure(order, other); math.Abs(got-want) > 1e-15 {
		t.Errorf("Exposure = %v, want %v", got, want)
	}
}

func TestExposureEdgeCases(t *testing.T) {
	if got := Exposure(nil, func(int) bool { return true }); got != 0 {
		t.Errorf("empty ranking: Exposure = %v, want 0", got)
	}
	if got := Exposure([]int{2, 0, 1}, func(int) bool { return false }); got != 0 {
		t.Errorf("empty group: Exposure = %v, want 0", got)
	}
	// The whole population's exposure is the sum of the position weights,
	// independent of which object holds which position.
	all := func(int) bool { return true }
	a := Exposure([]int{0, 1, 2}, all)
	b := Exposure([]int{2, 0, 1}, all)
	if a != b {
		t.Errorf("full-population exposure depends on permutation: %v vs %v", a, b)
	}
}

func TestDDPWorkedExample(t *testing.T) {
	// Four objects under the identity ranking, position weights
	// w = {1, 1/log2(3), 1/2, 1/log2(5)}:
	//   obj 0: A only      obj 1: B only
	//   obj 2: neither     obj 3: both A and B
	// Group A = {0, 3}: per-capita (w0+w3)/2 = (1 + 1/log2(5))/2 ≈ 0.7153
	// Group B = {1, 3}: per-capita (w1+w3)/2 ≈ 0.5308
	// Rest    = {2}:    per-capita w2 = 0.5
	// DDP = max pairwise gap = A − rest.
	d := exposureDataset(t, [][2]float64{{1, 0}, {0, 1}, {0, 0}, {1, 1}})
	order := []int{0, 1, 2, 3}
	got, err := DDP(d, order, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := (1+1/math.Log2(5))/2 - 0.5
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("DDP = %v, want %v", got, want)
	}

	// Reversing the ranking flips who gets the top weight: now the rest
	// object 2 sits at position 1 and group B leads.
	//   order {3, 2, 1, 0}: A = (w0+w3)/2 (objects 3, 0 at pos 0, 3),
	//   B = (w0+w2)/2, rest = w1. The max gap is B − A.
	rev := []int{3, 2, 1, 0}
	got, err = DDP(d, rev, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	a := (1 + 1/math.Log2(5)) / 2
	b := (1 + 0.5) / 2
	rest := 1 / math.Log2(3)
	want = math.Max(math.Abs(a-b), math.Max(math.Abs(a-rest), math.Abs(b-rest)))
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("reversed DDP = %v, want %v", got, want)
	}
}

func TestDDPParityAndDegenerate(t *testing.T) {
	// Two groups with mirror-image membership at symmetric positions:
	// A = {0}, B = {1} under order {0, 1} — per-capita 1 vs 1/log2(3).
	d := exposureDataset(t, [][2]float64{{1, 0}, {0, 1}})
	got, err := DDP(d, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 1/math.Log2(3)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("DDP = %v, want %v", got, want)
	}

	// Everyone in group A, group B and the rest empty: fewer than two
	// populated groups means no pairwise gap to measure — a sentinel, not
	// a 0 that would read as genuine parity.
	uni := exposureDataset(t, [][2]float64{{1, 0}, {1, 0}, {1, 0}})
	if _, err := DDP(uni, []int{2, 0, 1}, []int{0, 1}); !errors.Is(err, ErrDegenerateGroups) {
		t.Errorf("single-group DDP error = %v, want ErrDegenerateGroups", err)
	}

	// No fairness columns is a caller error, not a zero.
	if _, err := DDP(uni, []int{0, 1, 2}, nil); err == nil {
		t.Error("DDP with no fairness attributes did not error")
	}
}

func TestDDPMembershipThreshold(t *testing.T) {
	// Membership is > 0.5: a 0.5 entry counts as out, matching the
	// documented binary-attributes-only contract.
	n := 3
	score := []float64{0, 1, 2}
	col := []float64{1, 0.5, 0}
	d, err := dataset.New([]string{"s"}, []string{"A"}, [][]float64{score}, [][]float64{col}, nil)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	got, err := DDP(d, order, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// A = {0} per-capita 1; rest = {1, 2} per-capita (1/log2(3) + 1/2)/2.
	want := 1 - (1/math.Log2(3)+0.5)/2
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("DDP = %v, want %v", got, want)
	}
}
