// Package metrics implements the fairness and utility metrics of the paper:
// the disparity vector (Definition 3) and its logarithmically discounted
// whole-ranking variant (Section IV-E), nDCG utility, exposure and the DDP
// demographic-disparity constraint (Section VI-C4), the scaled disparate
// impact (Section VI-C5), and per-group false positive rate differences
// (the equalized-odds extension used on COMPAS).
//
// Every fairness metric in this package returns a vector with one dimension
// per fairness attribute, bounded in [-1, 1], with 0 meaning statistical
// parity — the contract DCA requires of its optimization objectives.
package metrics
