package metrics

import (
	"math"
	"testing"

	"fairrank/internal/dataset"
)

func outcomeDataset(t testing.TB, fair []float64, outcomes []bool) *dataset.Dataset {
	t.Helper()
	score := make([]float64, len(fair))
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, outcomes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDisparateImpactParity(t *testing.T) {
	fair := []float64{1, 1, 0, 0}
	d := binaryDataset(t, fair)
	// One selected from each group: P(sel|F=1) = P(sel|F=0) = 0.5.
	got := DisparateImpact(d, []int{0, 2})
	if got[0] != 0 {
		t.Errorf("DI at parity = %v, want 0", got[0])
	}
}

func TestDisparateImpactDirectionAndBounds(t *testing.T) {
	fair := []float64{1, 1, 1, 1, 0, 0, 0, 0}
	d := binaryDataset(t, fair)
	// Protected group selected less often: negative.
	got := DisparateImpact(d, []int{0, 4, 5, 6})
	if got[0] >= 0 || got[0] < -1 {
		t.Errorf("underrepresentation DI = %v, want in [-1, 0)", got[0])
	}
	// Only protected selected: +1 (complete unfairness the other way).
	got = DisparateImpact(d, []int{0, 1})
	if got[0] != 1 {
		t.Errorf("protected-only DI = %v, want 1", got[0])
	}
	// Only unprotected selected: -1.
	got = DisparateImpact(d, []int{4, 5})
	if got[0] != -1 {
		t.Errorf("unprotected-only DI = %v, want -1", got[0])
	}
	// Nobody selected: 0 by convention.
	got = DisparateImpact(d, nil)
	if got[0] != 0 {
		t.Errorf("empty selection DI = %v, want 0", got[0])
	}
}

func TestDisparateImpactValue(t *testing.T) {
	// P(sel|F=1) = 1/4, P(sel|F=0) = 2/4 -> ratio 0.5, sign negative ->
	// -(1-0.5) = -0.5.
	fair := []float64{1, 1, 1, 1, 0, 0, 0, 0}
	d := binaryDataset(t, fair)
	got := DisparateImpact(d, []int{0, 4, 5})
	if math.Abs(got[0]-(-0.5)) > 1e-12 {
		t.Errorf("DI = %v, want -0.5", got[0])
	}
}

func TestDisparateImpactDegenerateGroup(t *testing.T) {
	// Everyone protected: attribute contributes 0 (no comparison group).
	fair := []float64{1, 1, 1}
	d := binaryDataset(t, fair)
	if got := DisparateImpact(d, []int{0}); got[0] != 0 {
		t.Errorf("single-group DI = %v, want 0", got[0])
	}
}

func TestFPRDiff(t *testing.T) {
	// 4 negatives (no recidivism): two protected, two not. Flag one
	// protected negative and zero unprotected negatives.
	fair := []float64{1, 1, 0, 0, 1, 0}
	outcomes := []bool{false, false, false, false, true, true}
	d := outcomeDataset(t, fair, outcomes)
	got := FPRDiff(d, []int{0, 4, 5})
	// Overall FPR = 1/4; protected FPR = 1/2; diff = 0.25.
	if math.Abs(got[0]-0.25) > 1e-12 {
		t.Errorf("FPRDiff = %v, want 0.25", got[0])
	}
}

func TestFPRDiffNoOutcomes(t *testing.T) {
	d := binaryDataset(t, []float64{1, 0})
	if got := FPRDiff(d, []int{0}); got[0] != 0 {
		t.Errorf("FPRDiff without outcomes = %v, want 0", got[0])
	}
}

func TestFPRDiffAllPositives(t *testing.T) {
	fair := []float64{1, 0}
	outcomes := []bool{true, true}
	d := outcomeDataset(t, fair, outcomes)
	if got := FPRDiff(d, []int{0}); got[0] != 0 {
		t.Errorf("FPRDiff with no negatives = %v, want 0", got[0])
	}
}

func TestGroupFPR(t *testing.T) {
	fair := []float64{1, 1, 0}
	outcomes := []bool{false, false, false}
	d := outcomeDataset(t, fair, outcomes)
	fpr, neg := GroupFPR(d, []int{0}, 0)
	if neg != 2 || math.Abs(fpr-0.5) > 1e-12 {
		t.Errorf("GroupFPR = (%v, %d), want (0.5, 2)", fpr, neg)
	}
	fpr, neg = GroupFPR(binaryDataset(t, fair), []int{0}, 0)
	if fpr != 0 || neg != 0 {
		t.Errorf("GroupFPR without outcomes = (%v, %d)", fpr, neg)
	}
}

func TestExposure(t *testing.T) {
	order := []int{3, 1, 2, 0}
	// Members: objects 3 (rank 1) and 2 (rank 3).
	member := func(i int) bool { return i == 3 || i == 2 }
	got := Exposure(order, member)
	want := 1/math.Log2(2) + 1/math.Log2(4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Exposure = %v, want %v", got, want)
	}
}

func TestDDPUniformOrderingIsSmall(t *testing.T) {
	// Two interleaved groups get nearly equal per-capita exposure.
	fair := make([]float64, 40)
	order := make([]int, 40)
	for i := range fair {
		if i%2 == 0 {
			fair[i] = 1
		}
		order[i] = i
	}
	d := binaryDataset(t, fair)
	ddp, err := DDP(d, order, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// A small residual remains because even ranks systematically precede
	// odd ranks under the log discount.
	if ddp > 0.05 {
		t.Errorf("DDP of interleaved groups = %v, want ≈ 0", ddp)
	}
}

func TestDDPFrontLoadedIsLarge(t *testing.T) {
	fair := make([]float64, 40)
	order := make([]int, 40)
	for i := range fair {
		if i < 20 {
			fair[i] = 1 // protected group hogs the top
		}
		order[i] = i
	}
	d := binaryDataset(t, fair)
	ddp, err := DDP(d, order, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	small, err := DDP(d, interleave(40), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if ddp <= small {
		t.Errorf("front-loaded DDP %v should exceed interleaved %v", ddp, small)
	}
}

func interleave(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n/2; i++ {
		out = append(out, i, i+n/2)
	}
	return out
}

func TestDDPErrors(t *testing.T) {
	d := binaryDataset(t, []float64{1, 0})
	if _, err := DDP(d, []int{0, 1}, nil); err == nil {
		t.Error("no attributes: expected error")
	}
}
