package metrics

import (
	"math/rand"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/rank"
)

// prefixTestDataset builds a dataset with irrational-ish fairness values so
// floating-point fold order actually matters, plus outcomes for FP counts.
func prefixTestDataset(t *testing.T, n int, seed int64) (*dataset.Dataset, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder([]string{"s"}, []string{"a", "b", "c"})
	for i := 0; i < n; i++ {
		score := []float64{rng.NormFloat64()}
		fair := []float64{rng.Float64(), float64(rng.Intn(2)), rng.Float64() * rng.Float64()}
		b.AddWithOutcome(score, fair, rng.Intn(3) == 0)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = d.Score(i, 0)
	}
	return d, rank.Order(scores)
}

func TestPrefixCentroidBitIdentical(t *testing.T) {
	d, order := prefixTestDataset(t, 400, 1)
	cuts := []int{1, 2, 37, 38, 200, 399, 400}
	rows := PrefixCentroid(d, order, cuts)
	for c, cut := range cuts {
		want := d.FairCentroidOf(order[:cut])
		for j := range want {
			if rows[c][j] != want[j] {
				t.Errorf("cut %d dim %d: prefix %v != pointwise %v", cut, j, rows[c][j], want[j])
			}
		}
	}
}

func TestPrefixGroupCountsMatchesScan(t *testing.T) {
	d, order := prefixTestDataset(t, 300, 2)
	cuts := []int{1, 5, 150, 300}
	rows := PrefixGroupCounts(d, order, cuts)
	for c, cut := range cuts {
		for j := 0; j < d.NumFair(); j++ {
			col := d.FairColumn(j)
			want := 0
			for _, i := range order[:cut] {
				if col[i] > 0.5 {
					want++
				}
			}
			if rows[c][j] != want {
				t.Errorf("cut %d dim %d: prefix count %d != %d", cut, j, rows[c][j], want)
			}
		}
	}
}

func TestPrefixFPCountsMatchesScan(t *testing.T) {
	d, order := prefixTestDataset(t, 300, 3)
	cuts := []int{1, 7, 144, 300}
	rows, all := PrefixFPCounts(d, order, cuts)
	for c, cut := range cuts {
		wantAll := 0
		for _, i := range order[:cut] {
			if !d.Outcome(i) {
				wantAll++
			}
		}
		if all[c] != wantAll {
			t.Errorf("cut %d: overall FP count %d != %d", cut, all[c], wantAll)
		}
		for j := 0; j < d.NumFair(); j++ {
			col := d.FairColumn(j)
			want := 0
			for _, i := range order[:cut] {
				if col[i] > 0.5 && !d.Outcome(i) {
					want++
				}
			}
			if rows[c][j] != want {
				t.Errorf("cut %d dim %d: FP count %d != %d", cut, j, rows[c][j], want)
			}
		}
	}
}

func TestPrefixDCGBitIdentical(t *testing.T) {
	d, order := prefixTestDataset(t, 500, 4)
	gains := make([]float64, d.N())
	for i := range gains {
		gains[i] = d.Score(i, 0)
	}
	cuts := []int{1, 3, 99, 100, 101, 499, 500}
	got := PrefixDCG(gains, order, cuts)
	for c, cut := range cuts {
		want := DCG(gains, order, cut)
		if got[c] != want {
			t.Errorf("cut %d: prefix DCG %v != DCG %v (not bit-identical)", cut, got[c], want)
		}
	}
}

func TestImpactFromCountsMatchesWithin(t *testing.T) {
	d, order := prefixTestDataset(t, 250, 5)
	all := allIndices(d.N())
	for _, cut := range []int{1, 10, 125, 250} {
		want := DisparateImpactWithin(d, all, order[:cut])
		counts := PrefixGroupCounts(d, order, []int{cut})[0]
		for j := 0; j < d.NumFair(); j++ {
			totWith := d.GroupSize(j)
			got := ImpactFromCounts(counts[j], totWith, cut-counts[j], d.N()-totWith)
			if got != want[j] {
				t.Errorf("cut %d dim %d: ImpactFromCounts %v != DisparateImpactWithin %v", cut, j, got, want[j])
			}
		}
	}
}

func TestImpactFromCountsEdgeCases(t *testing.T) {
	cases := []struct {
		selWith, totWith, selWithout, totWithout int
		want                                     float64
	}{
		{0, 0, 3, 10, 0},  // empty group
		{3, 10, 0, 0, 0},  // empty complement
		{0, 10, 0, 10, 0}, // nobody selected: parity
		{0, 10, 3, 10, -1},
		{3, 10, 0, 10, 1},
		{5, 10, 5, 10, 0}, // equal rates: parity
	}
	for _, c := range cases {
		if got := ImpactFromCounts(c.selWith, c.totWith, c.selWithout, c.totWithout); got != c.want {
			t.Errorf("ImpactFromCounts(%d,%d,%d,%d) = %v, want %v",
				c.selWith, c.totWith, c.selWithout, c.totWithout, got, c.want)
		}
	}
}

func TestPrefixCountMatchesSelectCount(t *testing.T) {
	for _, n := range []int{1, 2, 99, 80000} {
		for _, f := range []float64{1e-9, 0.01, 0.05, 0.5, 0.999, 1} {
			got, err := PrefixCount(n, f)
			if err != nil {
				t.Fatalf("PrefixCount(%d, %g): %v", n, f, err)
			}
			want, err := rank.SelectCount(n, f)
			if err != nil {
				t.Fatalf("SelectCount(%d, %g): %v", n, f, err)
			}
			if got != want {
				t.Errorf("PrefixCount(%d, %g) = %d, SelectCount = %d", n, f, got, want)
			}
		}
	}
	if _, err := PrefixCount(10, 0); err == nil {
		t.Error("PrefixCount accepted 0")
	}
	if _, err := PrefixCount(10, 1.5); err == nil {
		t.Error("PrefixCount accepted 1.5")
	}
}
