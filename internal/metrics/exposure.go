package metrics

import (
	"errors"
	"fmt"
	"math"

	"fairrank/internal/dataset"
)

// ErrDegenerateGroups is returned by the DDP finishers when fewer than two
// exposure groups are populated: with at most one group present there is
// no pairwise per-capita gap to measure, and reporting 0 would be
// indistinguishable from genuine parity. Like ErrZeroIdealDCG it is a
// data-dependent, per-query failure — sweep and batch paths isolate it to
// the offending point instead of failing the whole request.
var ErrDegenerateGroups = errors.New("metrics: fewer than two populated exposure groups")

// Exposure returns Σ_{i∈G} 1/log2(r(i)+1) where r(i) is the 1-based rank of
// object i in the ranking order, for the group G given by the member
// predicate. This is the exposure definition of Gupta et al. used in
// Section VI-C4. It is the paper-faithful reference implementation; the
// serving paths use the columnar PrefixExposure aggregators below.
func Exposure(order []int, member func(i int) bool) float64 {
	var s float64
	for pos, obj := range order {
		if member(obj) {
			s += 1 / math.Log2(float64(pos)+2)
		}
	}
	return s
}

// DDP returns the demographic disparity constraint of Gupta et al.:
// the maximum pairwise difference of per-capita exposure across groups.
// Groups are the member sets of the listed binary fairness attributes plus
// the set of objects belonging to none of them; a value of 0 means every
// group receives the same average exposure. When fewer than two groups are
// populated it returns ErrDegenerateGroups — there is no gap to measure.
//
// Continuous fairness attributes are not supported (DDP is a group metric);
// pass only the binary attribute columns, as the paper does when it drops
// ENI for the exposure experiment.
func DDP(d *dataset.Dataset, order []int, fairCols []int) (float64, error) {
	if len(fairCols) == 0 {
		return 0, fmt.Errorf("metrics: DDP with no fairness attributes")
	}
	g := len(fairCols) + 1 // +1 for the unprotected rest
	exposure := make([]float64, g)
	sizes := make([]int, g)
	for pos, obj := range order {
		w := 1 / math.Log2(float64(pos)+2)
		inAny := false
		for gi, col := range fairCols {
			if d.Fair(obj, col) > 0.5 {
				exposure[gi] += w
				sizes[gi]++
				inAny = true
			}
		}
		if !inAny {
			exposure[g-1] += w
			sizes[g-1]++
		}
	}
	return DDPFromExposure(exposure, sizes)
}

// DDPFromExposure is the scalar DDP finisher over per-group exposure sums
// and membership counts: the maximum pairwise gap of per-capita exposure
// across populated groups (sizes[g] > 0). It returns ErrDegenerateGroups
// when fewer than two groups are populated. The maximum pairwise |a−b| is
// attained at the (max, min) pair, and correctly-rounded subtraction is
// monotone, so the max−min form is bit-identical to the pairwise double
// loop it replaces. The sweep engine calls it on prefix-resumed rows; DDP
// calls it on full-ranking sums — same finisher, bit-identical answers.
func DDPFromExposure(exposure []float64, sizes []int) (float64, error) {
	var lo, hi float64
	populated := 0
	for g, sz := range sizes {
		if sz == 0 {
			continue
		}
		pc := exposure[g] / float64(sz)
		if populated == 0 || pc < lo {
			lo = pc
		}
		if populated == 0 || pc > hi {
			hi = pc
		}
		populated++
	}
	if populated < 2 {
		return 0, ErrDegenerateGroups
	}
	return hi - lo, nil
}

// ExposurePerCapitaInto divides per-group exposure sums by membership
// counts into dst (an unpopulated group maps to 0) and returns dst. Since
// every position weight is strictly positive, a populated group's
// per-capita exposure is strictly positive — zero entries and unpopulated
// groups coincide, which is what lets DDPFromPerCapita recover the DDP
// from the vector alone.
func ExposurePerCapitaInto(exposure []float64, sizes []int, dst []float64) []float64 {
	for g := range dst {
		if sizes[g] == 0 {
			dst[g] = 0
			continue
		}
		dst[g] = exposure[g] / float64(sizes[g])
	}
	return dst
}

// DDPFromPerCapita recovers the DDP from a per-capita exposure vector as
// produced by ExposurePerCapitaInto: the max−min gap over positive entries
// (zero entries are unpopulated groups, never genuine zero exposure). It
// returns ErrDegenerateGroups when fewer than two entries are positive,
// and is bit-identical to DDPFromExposure over the same populated groups —
// the service layer uses it to re-derive the DDP norm of cached rows.
func DDPFromPerCapita(perCapita []float64) (float64, error) {
	var lo, hi float64
	populated := 0
	for _, pc := range perCapita {
		if pc <= 0 {
			continue
		}
		if populated == 0 || pc < lo {
			lo = pc
		}
		if populated == 0 || pc > hi {
			hi = pc
		}
		populated++
	}
	if populated < 2 {
		return 0, ErrDegenerateGroups
	}
	return hi - lo, nil
}

// ExpRatioFromCounts is the scalar exposure/merit ratio of one group: its
// per-capita exposure within the prefix (expo over inPrefix members)
// divided by its merit rate (posTot ground-truth-positive members out of
// groupTot). Any zero denominator — a group absent from the prefix, empty
// in the population, or without a single positive outcome — yields 0,
// the same convention the FPR difference uses for empty groups.
func ExpRatioFromCounts(expo float64, inPrefix, posTot, groupTot int) float64 {
	if inPrefix == 0 || posTot == 0 || groupTot == 0 {
		return 0
	}
	return (expo / float64(inPrefix)) / (float64(posTot) / float64(groupTot))
}

// TopKFromCounts is the scalar top-K rank-fairness term of one group: its
// share of the top-k prefix minus its share of the whole cohort. A
// positive value means the prefix over-represents the group. Degenerate
// denominators yield 0 (an empty prefix or population has no shares).
func TopKFromCounts(inPrefix, prefix, inPop, pop int) float64 {
	if prefix == 0 || pop == 0 {
		return 0
	}
	return float64(inPrefix)/float64(prefix) - float64(inPop)/float64(pop)
}

// PrefixExposure returns, for every cut in cuts (ascending), the exposure
// sum of every group in order[:cut] — the NumFair named groups (attribute
// value > 0.5) followed by the unprotected rest — as one row per cut.
func PrefixExposure(d *dataset.Dataset, order []int, cuts []int) [][]float64 {
	g := d.NumFair() + 1
	flat := PrefixExposureInto(d, order, cuts, make([]float64, g), make([]float64, len(cuts)*g))
	out := make([][]float64, len(cuts))
	for c := range out {
		out[c] = flat[c*g : (c+1)*g]
	}
	return out
}

// PrefixExposureInto is the in-place variant of PrefixExposure: sum is a
// running-sum scratch of length NumFair+1 and dst receives the exposure
// rows flattened (row c at dst[c*(NumFair+1):(c+1)*(NumFair+1)]). It
// allocates nothing and returns dst. Each row is bit-identical to the
// full-scan accumulation DDP performs over order[:cuts[c]]: position-outer,
// group-inner, the same additions in the same order, merely resumed across
// segment boundaries. The loop is object-outer (unlike the column-outer
// centroid fold) because the trailing rest group needs a per-object
// "member of no group" test.
func PrefixExposureInto(d *dataset.Dataset, order []int, cuts []int, sum, dst []float64) []float64 {
	g := d.NumFair() + 1
	cols := d.FairColumns()
	for j := 0; j < g; j++ {
		sum[j] = 0
	}
	prev := 0
	for c, cut := range cuts {
		for pos := prev; pos < cut; pos++ {
			i := order[pos]
			w := 1 / math.Log2(float64(pos)+2)
			inAny := false
			for j, col := range cols {
				if col[i] > 0.5 {
					sum[j] += w
					inAny = true
				}
			}
			if !inAny {
				sum[g-1] += w
			}
		}
		copy(dst[c*g:(c+1)*g], sum)
		prev = cut
	}
	return dst
}

// PrefixExposureCounts returns, for every cut in cuts (ascending), the
// membership counts of the exposure groups in order[:cut] — the NumFair
// named groups followed by the unprotected rest — as one row per cut.
// Together with PrefixExposure it feeds DDPFromExposure; counts are
// integers, so exactness needs no fold argument.
func PrefixExposureCounts(d *dataset.Dataset, order []int, cuts []int) [][]int {
	g := d.NumFair() + 1
	flat := PrefixExposureCountsInto(d, order, cuts, make([]int, len(cuts)*g))
	out := make([][]int, len(cuts))
	for c := range out {
		out[c] = flat[c*g : (c+1)*g]
	}
	return out
}

// PrefixExposureCountsInto is the in-place variant of PrefixExposureCounts:
// dst receives the count rows flattened (row width NumFair+1). It allocates
// nothing and returns dst.
func PrefixExposureCountsInto(d *dataset.Dataset, order []int, cuts []int, dst []int) []int {
	g := d.NumFair() + 1
	cols := d.FairColumns()
	prev := 0
	for c, cut := range cuts {
		row := dst[c*g : (c+1)*g]
		if c == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			copy(row, dst[(c-1)*g:c*g])
		}
		for _, i := range order[prev:cut] {
			inAny := false
			for j, col := range cols {
				if col[i] > 0.5 {
					row[j]++
					inAny = true
				}
			}
			if !inAny {
				row[g-1]++
			}
		}
		prev = cut
	}
	return dst
}
