package metrics

import (
	"fmt"
	"math"

	"fairrank/internal/dataset"
)

// Exposure returns Σ_{i∈G} 1/log2(r(i)+1) where r(i) is the 1-based rank of
// object i in the ranking order, for the group G given by the member
// predicate. This is the exposure definition of Gupta et al. used in
// Section VI-C4.
func Exposure(order []int, member func(i int) bool) float64 {
	var s float64
	for pos, obj := range order {
		if member(obj) {
			s += 1 / math.Log2(float64(pos)+2)
		}
	}
	return s
}

// DDP returns the demographic disparity constraint of Gupta et al.:
// the maximum pairwise difference of per-capita exposure across groups.
// Groups are the member sets of the listed binary fairness attributes plus
// the set of objects belonging to none of them; a value of 0 means every
// group receives the same average exposure.
//
// Continuous fairness attributes are not supported (DDP is a group metric);
// pass only the binary attribute columns, as the paper does when it drops
// ENI for the exposure experiment.
func DDP(d *dataset.Dataset, order []int, fairCols []int) (float64, error) {
	if len(fairCols) == 0 {
		return 0, fmt.Errorf("metrics: DDP with no fairness attributes")
	}
	type group struct {
		exposure float64
		size     int
	}
	groups := make([]group, len(fairCols)+1) // +1 for the unprotected rest
	for pos, obj := range order {
		w := 1 / math.Log2(float64(pos)+2)
		inAny := false
		for gi, col := range fairCols {
			if d.Fair(obj, col) > 0.5 {
				groups[gi].exposure += w
				groups[gi].size++
				inAny = true
			}
		}
		if !inAny {
			rest := &groups[len(fairCols)]
			rest.exposure += w
			rest.size++
		}
	}
	var perCapita []float64
	for _, g := range groups {
		if g.size > 0 {
			perCapita = append(perCapita, g.exposure/float64(g.size))
		}
	}
	if len(perCapita) < 2 {
		return 0, nil
	}
	var ddp float64
	for i := 0; i < len(perCapita); i++ {
		for j := i + 1; j < len(perCapita); j++ {
			diff := math.Abs(perCapita[i] - perCapita[j])
			if diff > ddp {
				ddp = diff
			}
		}
	}
	return ddp, nil
}
