package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairrank/internal/dataset"
)

// binaryDataset builds a one-attribute dataset; t may be nil when called
// from testing/quick property functions.
func binaryDataset(t testing.TB, fair []float64) *dataset.Dataset {
	if t != nil {
		t.Helper()
	}
	score := make([]float64, len(fair))
	for i := range score {
		score[i] = float64(i)
	}
	d, err := dataset.New([]string{"s"}, []string{"f"}, [][]float64{score}, [][]float64{fair}, nil)
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	return d
}

func TestDisparityWorkedExample(t *testing.T) {
	// The paper's example: population 30% low income, selection 20% low
	// income -> disparity -0.10.
	fair := make([]float64, 100)
	for i := 0; i < 30; i++ {
		fair[i] = 1
	}
	d := binaryDataset(t, fair)
	// Select 10 objects, 2 of them low income.
	selected := []int{0, 1, 40, 41, 42, 43, 44, 45, 46, 47}
	got := Disparity(d, selected)
	if math.Abs(got[0]-(-0.10)) > 1e-12 {
		t.Errorf("disparity = %v, want -0.10", got[0])
	}
}

func TestDisparityZeroAtParity(t *testing.T) {
	fair := []float64{1, 1, 0, 0, 1, 1, 0, 0}
	d := binaryDataset(t, fair)
	// Selection with the same 50% composition as the population.
	got := Disparity(d, []int{0, 2, 5, 7})
	if math.Abs(got[0]) > 1e-12 {
		t.Errorf("disparity at parity = %v, want 0", got[0])
	}
}

// Property: every disparity dimension lies in [-1, 1]; selecting everyone
// gives exactly zero.
func TestDisparityBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		fair := make([]float64, n)
		for i := range fair {
			fair[i] = float64(rng.Intn(2))
		}
		d := binaryDataset(nil, fair)
		k := 1 + rng.Intn(n)
		sel := rng.Perm(n)[:k]
		v := Disparity(d, sel)
		if v[0] < -1 || v[0] > 1 {
			return false
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return math.Abs(Disparity(d, all)[0]) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDisparityWithin(t *testing.T) {
	fair := []float64{1, 0, 1, 0, 1, 0}
	d := binaryDataset(t, fair)
	// Sample = {0,1,2,3} (50% protected); selection = {0,2} (100%).
	got := DisparityWithin(d, []int{0, 1, 2, 3}, []int{0, 2})
	if math.Abs(got[0]-0.5) > 1e-12 {
		t.Errorf("DisparityWithin = %v, want 0.5", got[0])
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{0.3, -0.4}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Norm = %v, want 0.5", got)
	}
	if Norm(nil) != 0 {
		t.Error("Norm(nil) != 0")
	}
}

func TestLogDiscountWeights(t *testing.T) {
	ld := LogDiscount{}
	// Weight at 10% = 1/log2(11); smaller fractions weigh more.
	w10 := ld.Weight(0.10)
	if math.Abs(w10-1/math.Log2(11)) > 1e-12 {
		t.Errorf("Weight(0.10) = %v", w10)
	}
	if ld.Weight(0.05) <= ld.Weight(0.5) {
		t.Error("discounting must favor smaller selections")
	}
}

func TestDefaultPoints(t *testing.T) {
	pts := DefaultPoints(0.1, 0.5)
	want := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-9 {
			t.Fatalf("points = %v, want %v", pts, want)
		}
	}
}

func TestLogDiscountEvalParityIsZero(t *testing.T) {
	// Alternating membership: every prefix of even length is at parity; the
	// discounted aggregate should be near zero.
	fair := make([]float64, 100)
	for i := range fair {
		if i%2 == 0 {
			fair[i] = 1
		}
	}
	d := binaryDataset(t, fair)
	order := make([]int, 100)
	for i := range order {
		order[i] = i
	}
	ld := LogDiscount{Points: DefaultPoints(0.1, 0.5)}
	got, err := ld.Eval(d, order)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]) > 0.02 {
		t.Errorf("discounted disparity at parity = %v, want ≈ 0", got[0])
	}
}

func TestLogDiscountEvalDetectsFrontLoading(t *testing.T) {
	// All protected objects ranked last: strongly negative.
	fair := make([]float64, 100)
	for i := 50; i < 100; i++ {
		fair[i] = 1
	}
	d := binaryDataset(t, fair)
	order := make([]int, 100)
	for i := range order {
		order[i] = i
	}
	ld := LogDiscount{Points: DefaultPoints(0.1, 0.5)}
	got, err := ld.Eval(d, order)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] >= -0.3 {
		t.Errorf("discounted disparity = %v, want strongly negative", got[0])
	}
	if got[0] < -1 {
		t.Errorf("discounted disparity = %v outside [-1,1]", got[0])
	}
}

func TestLogDiscountEvalErrors(t *testing.T) {
	d := binaryDataset(t, []float64{1, 0})
	if _, err := (LogDiscount{}).Eval(d, []int{0, 1}); err == nil {
		t.Error("no points: expected error")
	}
	if _, err := (LogDiscount{Points: []float64{2}}).Eval(d, []int{0, 1}); err == nil {
		t.Error("point > 1: expected error")
	}
	got, err := (LogDiscount{Points: []float64{0.5}}).Eval(d, nil)
	if err != nil || got[0] != 0 {
		t.Errorf("empty order = (%v, %v), want zero vector", got, err)
	}
}

func TestNDCGUnchangedRankingIsOne(t *testing.T) {
	gains := []float64{9, 7, 5, 3, 1}
	order := []int{0, 1, 2, 3, 4}
	got, err := NDCG(gains, order, order, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("NDCG of unchanged ranking = %v, want 1", got)
	}
}

func TestNDCGReversedIsBelowOne(t *testing.T) {
	gains := []float64{9, 7, 5, 3, 1}
	orig := []int{0, 1, 2, 3, 4}
	rev := []int{4, 3, 2, 1, 0}
	got, err := NDCG(gains, rev, orig, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got >= 1 || got <= 0 {
		t.Errorf("NDCG of reversed ranking = %v, want in (0,1)", got)
	}
}

func TestNDCGErrors(t *testing.T) {
	gains := []float64{1, 2}
	if _, err := NDCG(gains, []int{0}, []int{0, 1}, 1); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := NDCG(gains, []int{0, 1}, []int{0, 1}, 0); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := NDCG([]float64{0, 0}, []int{0, 1}, []int{0, 1}, 2); err == nil {
		t.Error("zero ideal DCG: expected error")
	}
	if _, err := NDCGAtFrac(gains, []int{0, 1}, []int{0, 1}, 1.5); err == nil {
		t.Error("frac > 1: expected error")
	}
}

func TestDCGTruncation(t *testing.T) {
	gains := []float64{4, 2}
	order := []int{0, 1}
	if got := DCG(gains, order, 10); math.Abs(got-(4+2/math.Log2(3))) > 1e-12 {
		t.Errorf("DCG clamps k: got %v", got)
	}
}
