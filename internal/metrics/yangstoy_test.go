package metrics

import (
	"math/rand"
	"testing"
)

func ysOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func TestYangStoyanovichFairOrderingNearZero(t *testing.T) {
	// Alternating membership: every prefix mirrors the population.
	fair := make([]float64, 200)
	for i := range fair {
		if i%2 == 0 {
			fair[i] = 1
		}
	}
	d := binaryDataset(t, fair)
	ys := YangStoyanovich{Points: DefaultPoints(0.1, 1)}
	for name, f := range map[string]func() (float64, error){
		"rND": func() (float64, error) { return ys.RND(d, ysOrder(200), 0) },
		"rKL": func() (float64, error) { return ys.RKL(d, ysOrder(200), 0) },
		"rRD": func() (float64, error) { return ys.RRD(d, ysOrder(200), 0) },
	} {
		v, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if v > 0.05 {
			t.Errorf("%s of fair ordering = %v, want ≈ 0", name, v)
		}
	}
}

func TestYangStoyanovichWorstOrderingNearOne(t *testing.T) {
	// All protected at the bottom: maximal unfairness.
	fair := make([]float64, 200)
	for i := 100; i < 200; i++ {
		fair[i] = 1
	}
	d := binaryDataset(t, fair)
	ys := YangStoyanovich{Points: DefaultPoints(0.1, 1)}
	rnd, err := ys.RND(d, ysOrder(200), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rnd < 0.9 {
		t.Errorf("rND of worst ordering = %v, want ≈ 1", rnd)
	}
	rkl, err := ys.RKL(d, ysOrder(200), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rkl < 0.9 {
		t.Errorf("rKL of worst ordering = %v, want ≈ 1", rkl)
	}
}

func TestYangStoyanovichBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(200)
		fair := make([]float64, n)
		for i := range fair {
			if rng.Float64() < 0.3 {
				fair[i] = 1
			}
		}
		d := binaryDataset(t, fair)
		order := rng.Perm(n)
		ys := YangStoyanovich{Points: DefaultPoints(0.1, 1)}
		for name, f := range map[string]func() (float64, error){
			"rND": func() (float64, error) { return ys.RND(d, order, 0) },
			"rKL": func() (float64, error) { return ys.RKL(d, order, 0) },
			"rRD": func() (float64, error) { return ys.RRD(d, order, 0) },
		} {
			v, err := f()
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > 1 {
				t.Fatalf("%s = %v outside [0,1]", name, v)
			}
		}
	}
}

func TestYangStoyanovichOrderingSensitivity(t *testing.T) {
	// Pushing the protected group down must increase every measure.
	n := 100
	fair := make([]float64, n)
	for i := 0; i < n/2; i++ {
		fair[i] = 1
	}
	d := binaryDataset(t, fair)
	fairOrder := interleave(n)
	worstOrder := make([]int, n)
	for i := 0; i < n/2; i++ {
		worstOrder[i] = i + n/2 // unprotected first
		worstOrder[i+n/2] = i
	}
	ys := YangStoyanovich{Points: DefaultPoints(0.1, 1)}
	fairV, err := ys.RND(d, fairOrder, 0)
	if err != nil {
		t.Fatal(err)
	}
	worstV, err := ys.RND(d, worstOrder, 0)
	if err != nil {
		t.Fatal(err)
	}
	if worstV <= fairV {
		t.Errorf("rND should increase for worse orderings: fair %v, worst %v", fairV, worstV)
	}
}

func TestYangStoyanovichErrorsAndEdges(t *testing.T) {
	d := binaryDataset(t, []float64{1, 0})
	ys := YangStoyanovich{}
	if _, err := ys.RND(d, []int{0, 1}, 0); err == nil {
		t.Error("no points: expected error")
	}
	ys = YangStoyanovich{Points: []float64{0.5}}
	v, err := ys.RND(d, nil, 0)
	if err != nil || v != 0 {
		t.Errorf("empty order = (%v, %v), want 0", v, err)
	}
	// Degenerate population (everyone protected): zMax = 0 -> 0.
	allProt := binaryDataset(t, []float64{1, 1, 1, 1})
	v, err = ys.RND(allProt, ysOrder(4), 0)
	if err != nil || v != 0 {
		t.Errorf("degenerate population = (%v, %v), want 0", v, err)
	}
}
