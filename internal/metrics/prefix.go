package metrics

import (
	"math"

	"fairrank/internal/dataset"
)

// Prefix aggregators: every top-k metric in this package is a function of
// the ranked prefix order[:cut], so a sweep over many selection fractions
// of one ranking can be answered from running aggregates of a single pass
// instead of re-scanning the prefix per point. Each aggregator takes the
// cut points in ascending order and extends its running state segment by
// segment, which makes the value at each cut the *same left-to-right fold*
// the pointwise metric computes — results are bit-identical, not merely
// close (floating-point addition is order-sensitive; the order here is
// identical by construction).

// PrefixCentroid returns the fairness centroid of order[:cut] for every
// cut in cuts (ascending, each in [1, len(order)]), as one row per cut.
func PrefixCentroid(d *dataset.Dataset, order []int, cuts []int) [][]float64 {
	dims := d.NumFair()
	flat := PrefixCentroidInto(d, order, cuts, make([]float64, dims), make([]float64, len(cuts)*dims))
	out := make([][]float64, len(cuts))
	for c := range out {
		out[c] = flat[c*dims : (c+1)*dims]
	}
	return out
}

// PrefixCentroidInto is the in-place variant of PrefixCentroid: sum is a
// running-sum scratch of length NumFair and dst receives the centroid rows
// flattened (row c at dst[c*dims:(c+1)*dims], length len(cuts)*NumFair).
// It allocates nothing and returns dst. Each row is bit-identical to
// Dataset.FairCentroidInto(order[:cuts[c]], ...): per column, the running
// sum performs the same additions in the same order, merely resumed across
// segment boundaries.
func PrefixCentroidInto(d *dataset.Dataset, order []int, cuts []int, sum, dst []float64) []float64 {
	dims := d.NumFair()
	for j := 0; j < dims; j++ {
		sum[j] = 0
	}
	prev := 0
	for c, cut := range cuts {
		for j, col := range d.FairColumns() {
			s := sum[j]
			for _, i := range order[prev:cut] {
				s += col[i]
			}
			sum[j] = s
			dst[c*dims+j] = s / float64(cut)
		}
		prev = cut
	}
	return dst
}

// PrefixGroupCounts returns, for every cut in cuts (ascending), the number
// of objects in order[:cut] belonging to each binary fairness group
// (attribute value > 0.5), as one row per cut.
func PrefixGroupCounts(d *dataset.Dataset, order []int, cuts []int) [][]int {
	dims := d.NumFair()
	flat := PrefixGroupCountsInto(d, order, cuts, make([]int, len(cuts)*dims))
	out := make([][]int, len(cuts))
	for c := range out {
		out[c] = flat[c*dims : (c+1)*dims]
	}
	return out
}

// PrefixGroupCountsInto is the in-place variant of PrefixGroupCounts: dst
// receives the count rows flattened (row c at dst[c*dims:(c+1)*dims]). It
// allocates nothing and returns dst. Counts are integers, so exactness
// needs no fold argument.
func PrefixGroupCountsInto(d *dataset.Dataset, order []int, cuts []int, dst []int) []int {
	dims := d.NumFair()
	prev := 0
	for c, cut := range cuts {
		row := dst[c*dims : (c+1)*dims]
		if c == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			copy(row, dst[(c-1)*dims:c*dims])
		}
		for j, col := range d.FairColumns() {
			n := row[j]
			for _, i := range order[prev:cut] {
				if col[i] > 0.5 {
					n++
				}
			}
			row[j] = n
		}
		prev = cut
	}
	return dst
}

// PrefixFPCounts returns, for every cut in cuts (ascending), the number of
// "false positives" in order[:cut] — selected objects whose ground-truth
// outcome is false — per binary fairness group (rows) and overall (all).
// The dataset must carry outcomes.
func PrefixFPCounts(d *dataset.Dataset, order []int, cuts []int) (rows [][]int, all []int) {
	dims := d.NumFair()
	flat := make([]int, len(cuts)*dims)
	all = make([]int, len(cuts))
	PrefixFPCountsInto(d, order, cuts, flat, all)
	rows = make([][]int, len(cuts))
	for c := range rows {
		rows[c] = flat[c*dims : (c+1)*dims]
	}
	return rows, all
}

// PrefixFPCountsInto is the in-place variant of PrefixFPCounts: dst
// receives the per-group false-positive rows flattened, dstAll (length
// len(cuts)) the overall counts. It allocates nothing.
func PrefixFPCountsInto(d *dataset.Dataset, order []int, cuts []int, dst, dstAll []int) {
	dims := d.NumFair()
	prev := 0
	overall := 0
	for c, cut := range cuts {
		row := dst[c*dims : (c+1)*dims]
		if c == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			copy(row, dst[(c-1)*dims:c*dims])
		}
		for _, i := range order[prev:cut] {
			if !d.Outcome(i) {
				overall++
			}
		}
		for j, col := range d.FairColumns() {
			n := row[j]
			for _, i := range order[prev:cut] {
				if col[i] > 0.5 && !d.Outcome(i) {
					n++
				}
			}
			row[j] = n
		}
		dstAll[c] = overall
		prev = cut
	}
}

// PrefixDCG returns the discounted cumulative gain of order[:cut] for every
// cut in cuts (ascending): dst[c] = DCG(gains, order, cuts[c]).
func PrefixDCG(gains []float64, order []int, cuts []int) []float64 {
	return PrefixDCGInto(gains, order, cuts, make([]float64, len(cuts)))
}

// PrefixDCGInto is the in-place variant of PrefixDCG: dst (length
// len(cuts)) receives the DCG values. It allocates nothing and returns
// dst. Each value is bit-identical to DCG(gains, order, cuts[c]): the
// running sum is the same fold, resumed across segments.
func PrefixDCGInto(gains []float64, order []int, cuts []int, dst []float64) []float64 {
	var s float64
	prev := 0
	for c, cut := range cuts {
		for i := prev; i < cut; i++ {
			s += gains[order[i]] / math.Log2(float64(i)+2)
		}
		dst[c] = s
		prev = cut
	}
	return dst
}

// PrefixCount converts a selection fraction in (0, 1] into a prefix length
// over n objects — round-half-up, clamped to [1, n] — the cut-point
// arithmetic shared by every fraction-addressed metric in this package.
func PrefixCount(n int, frac float64) (int, error) {
	return prefixCount(n, frac)
}
