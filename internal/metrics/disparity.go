package metrics

import (
	"fmt"
	"math"

	"fairrank/internal/dataset"
)

// Norm returns the L2 norm of a disparity vector, the scalar the paper
// minimizes.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Disparity returns the disparity vector of a selection over the whole
// dataset: the centroid of the selected objects minus the centroid of the
// population, one dimension per fairness attribute (Definition 3).
// Negative values mean the attribute is underrepresented in the selection.
func Disparity(d *dataset.Dataset, selected []int) []float64 {
	return DisparityAgainst(d, selected, d.FairCentroid())
}

// DisparityAgainst computes the disparity of a selection against a
// precomputed population centroid. Callers that evaluate many selections
// over the same population (every DCA step) use this to avoid recomputing
// the centroid.
func DisparityAgainst(d *dataset.Dataset, selected []int, popCentroid []float64) []float64 {
	sel := d.FairCentroidOf(selected)
	out := make([]float64, len(sel))
	for j := range sel {
		out[j] = sel[j] - popCentroid[j]
	}
	return out
}

// DisparityWithin computes the disparity of a selection drawn from a sample
// of the dataset: both centroids (selected and "population") are computed
// over the sample, matching Theorem 4.5's sample disparity
// D_s = D_sk - D_sO. sampleIdx and selIdx hold absolute object indices;
// selIdx must be a subset of sampleIdx.
func DisparityWithin(d *dataset.Dataset, sampleIdx, selIdx []int) []float64 {
	return DisparityWithinInto(d, sampleIdx, selIdx, make([]float64, d.NumFair()), make([]float64, d.NumFair()))
}

// DisparityWithinInto is the in-place variant of DisparityWithin: popBuf
// receives the sample centroid, dst the disparity vector (both length
// NumFair). It allocates nothing and returns dst — the per-step form used
// by the engine hot path.
func DisparityWithinInto(d *dataset.Dataset, sampleIdx, selIdx []int, popBuf, dst []float64) []float64 {
	d.FairCentroidInto(sampleIdx, popBuf)
	d.FairCentroidInto(selIdx, dst)
	for j := range dst {
		dst[j] -= popBuf[j]
	}
	return dst
}

// LogDiscount configures the logarithmically discounted disparity of
// Section IV-E, which scores an entire ranking instead of a single
// selection size.
type LogDiscount struct {
	// Points are the selection fractions at which disparity is evaluated,
	// e.g. 0.10, 0.20, ..., MaxK following the paper's i ∈ {10, 20, 30...}.
	// Use DefaultPoints to build them.
	Points []float64
}

// DefaultPoints returns the evaluation fractions {step, 2*step, ...} up to
// and including maxK (paper default: step 0.10 up to the k of interest).
func DefaultPoints(step, maxK float64) []float64 {
	var pts []float64
	for f := step; f <= maxK+1e-9; f += step {
		pts = append(pts, math.Min(f, 1))
	}
	return pts
}

// PointsRange returns evaluation fractions restricted to [minK, maxK] in
// steps of step — the Section IV-E note that "users might only be
// interested in the top half of the ranking": disparity outside the range
// of interest is simply not evaluated.
func PointsRange(step, minK, maxK float64) []float64 {
	var pts []float64
	for f := step; f <= maxK+1e-9; f += step {
		if f >= minK-1e-9 {
			pts = append(pts, math.Min(f, 1))
		}
	}
	return pts
}

// Weight returns the discount applied at selection fraction f:
// 1 / log2(i + 1) with i the percentage value (f * 100), so that smaller
// selections (earlier ranks) matter more.
func (ld LogDiscount) Weight(f float64) float64 {
	return 1 / math.Log2(f*100+1)
}

// Eval computes the normalized discounted disparity vector
// (1/Z) * Σ_i D_i / log2(i+1) for a ranking given as descending-order
// object indices over the sample sampleIdx. The result keeps the contract
// of the plain disparity: each dimension in [-1, 1], 0 at parity.
func (ld LogDiscount) Eval(d *dataset.Dataset, order []int) ([]float64, error) {
	if len(ld.Points) == 0 {
		return nil, fmt.Errorf("metrics: LogDiscount with no evaluation points")
	}
	n := len(order)
	if n == 0 {
		return make([]float64, d.NumFair()), nil
	}
	pop := d.FairCentroidOf(order)
	dims := d.NumFair()
	acc := make([]float64, dims)
	running := make([]float64, dims) // running sum of fairness rows over the prefix
	var z float64
	next := 0
	prefix := 0
	row := make([]float64, dims)
	for next < len(ld.Points) {
		k, err := prefixCount(n, ld.Points[next])
		if err != nil {
			return nil, err
		}
		for prefix < k {
			d.FairRow(order[prefix], row)
			for j := range running {
				running[j] += row[j]
			}
			prefix++
		}
		w := ld.Weight(ld.Points[next])
		z += w
		for j := range acc {
			acc[j] += w * (running[j]/float64(prefix) - pop[j])
		}
		next++
	}
	for j := range acc {
		acc[j] /= z
	}
	return acc, nil
}

func prefixCount(n int, frac float64) (int, error) {
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("metrics: prefix fraction %v outside (0,1]", frac)
	}
	k := int(frac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k, nil
}
