module fairrank

go 1.24
