// Transparency: the explainability workflow the paper argues is the core
// advantage of bonus points over opaque re-ranking (Section III-C). The
// school publishes the rubric, the bonus vector, and the admission cutoff
// before applications are due; every family can then compute their
// student's adjusted score, see exactly which adjustments applied, and
// compare against the published threshold.
//
//	go run ./examples/transparency
package main

import (
	"fmt"
	"log"

	"fairrank"
)

func main() {
	cfg := fairrank.DefaultSchoolConfig()
	cfg.N = 40000
	d, err := fairrank.GenerateSchool(cfg)
	if err != nil {
		log.Fatal(err)
	}
	scorer := fairrank.WeightedSum{Weights: fairrank.SchoolScoreWeights()}
	const k = 0.05

	// An ensemble across seeds gives the committee a stability read before
	// publishing: large per-dimension spread would mean the policy is
	// sensitive to sampling noise.
	opts := fairrank.DefaultOptions()
	ens, err := fairrank.TrainEnsemble(d, scorer, fairrank.DisparityObjective(k), opts, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bonus policy (5-seed ensemble):")
	for j, name := range d.FairNames() {
		fmt.Printf("  %-12s %5.1f points  (seed-to-seed std %.2f)\n", name, ens.Bonus[j], ens.Std[j])
	}

	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)
	exp, err := ev.Explain(ens.Bonus, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npublished admission report:")
	for _, line := range exp.Summary() {
		fmt.Println("  " + line)
	}

	// A family checks their student's standing: the first beneficiary and
	// the first displaced student.
	for _, obj := range []int{exp.AdmittedByBonus[0], exp.DisplacedByBonus[0]} {
		oe, err := ev.ExplainObject(exp, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nstudent #%d:\n", obj)
		fmt.Printf("  rubric score        %8.3f\n", oe.BaseScore)
		for j, name := range d.FairNames() {
			if oe.PerAttribute[j] != 0 {
				fmt.Printf("  %-18s %+8.3f\n", name+" bonus", oe.PerAttribute[j])
			}
		}
		fmt.Printf("  adjusted score      %8.3f\n", oe.Effective)
		fmt.Printf("  published cutoff    %8.3f\n", exp.Cutoff)
		verdict := "not admitted"
		if oe.Selected {
			verdict = "admitted"
		}
		fmt.Printf("  margin %+.3f -> %s\n", oe.Margin, verdict)
	}
}
