// Recidivism: apply DCA to an adverse selection — a COMPAS-like risk tool
// whose decile scores flag the top of the ranking for detention decisions.
// Bonus points are subtracted from the risk score of over-flagged groups
// (the paper's "negative for scenarios where a lower score is desirable"),
// and the false-positive-rate objective targets the exact harm ProPublica
// documented: people who would not reoffend being flagged at unequal rates.
//
//	go run ./examples/recidivism
package main

import (
	"fmt"
	"log"

	"fairrank"
)

func main() {
	d, err := fairrank.GenerateCompas(fairrank.DefaultCompasConfig())
	if err != nil {
		log.Fatal(err)
	}
	scorer := fairrank.WeightedSum{Weights: fairrank.CompasScoreWeights()}
	const k = 0.20 // the riskiest 20% get flagged

	ev := fairrank.NewEvaluator(d, scorer, fairrank.Adverse)
	names := d.FairNames()

	disp, err := ev.Disparity(nil, k)
	if err != nil {
		log.Fatal(err)
	}
	fpr, err := ev.FPRDiff(nil, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before compensation (flagging the top 20% by decile):")
	for j, n := range names {
		fmt.Printf("  %-18s disparity %+.3f   FPR-gap %+.3f\n", n, disp[j], fpr[j])
	}

	// Adverse polarity: the trained points are subtracted from the decile
	// score, pulling over-flagged groups out of the selection.
	opts := fairrank.DefaultOptions()
	opts.Polarity = fairrank.Adverse
	opts.SampleSize = 2000 // rarest race group is ~0.5% of the population

	// Objective 1: statistical parity of the flagged set.
	res, err := fairrank.Train(d, scorer, fairrank.DisparityObjective(k), opts)
	if err != nil {
		log.Fatal(err)
	}
	after, err := ev.Disparity(res.Bonus, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter disparity-objective bonus points:")
	for j, n := range names {
		fmt.Printf("  %-18s bonus %4.1f   disparity %+.3f -> %+.3f\n", n, res.Bonus[j], disp[j], after[j])
	}
	fmt.Printf("  norm %.3f -> %.3f\n", fairrank.Norm(disp), fairrank.Norm(after))

	// Objective 2: equalized odds — drive per-group false positive rates
	// toward the population FPR instead.
	resFPR, err := fairrank.Train(d, scorer, fairrank.FPRObjective(k), opts)
	if err != nil {
		log.Fatal(err)
	}
	fprAfter, err := ev.FPRDiff(resFPR.Bonus, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter FPR-objective bonus points:")
	for j, n := range names {
		fmt.Printf("  %-18s bonus %4.1f   FPR-gap %+.3f -> %+.3f\n", n, resFPR.Bonus[j], fpr[j], fprAfter[j])
	}
	fmt.Printf("  norm %.3f -> %.3f\n", fairrank.Norm(fpr), fairrank.Norm(fprAfter))
}
