// Admissions: the paper's motivating scenario end to end. A city assigns
// students to selective high schools with deferred acceptance over each
// school's admission rubric. Because the matching mechanism — not a fixed
// cutoff — decides how far down its list each school admits, the selection
// fraction k is unknown in advance, so the bonus points are trained with
// the log-discounted DCA mode and compared against the set-aside quota
// mechanism NYC actually uses.
//
//	go run ./examples/admissions
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"fairrank"
)

const (
	numStudents = 12000
	numSchools  = 8
	capacity    = 220 // selective seats per school: ~15% of students admitted
)

func main() {
	cfg := fairrank.DefaultSchoolConfig()
	cfg.N = numStudents
	cfg.Seed = 11
	d, err := fairrank.GenerateSchool(cfg)
	if err != nil {
		log.Fatal(err)
	}
	scorer := fairrank.WeightedSum{Weights: fairrank.SchoolScoreWeights()}
	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)
	base := ev.BaseScores()

	// Student preference lists: every student ranks all schools, ordered by
	// an idiosyncratic taste draw (schools are horizontally differentiated).
	rng := rand.New(rand.NewSource(99))
	prefs := make([][]int, numStudents)
	for i := range prefs {
		taste := make([]float64, numSchools)
		for s := range taste {
			taste[s] = rng.NormFloat64()
		}
		order := make([]int, numSchools)
		for s := range order {
			order[s] = s
		}
		sort.Slice(order, func(a, b int) bool { return taste[order[a]] > taste[order[b]] })
		prefs[i] = order
	}

	// Disadvantaged = member of any binary fairness dimension (for quota
	// eligibility).
	disadvantaged := make([]bool, numStudents)
	for _, col := range []int{0, 1, 3} { // Low-Income, ELL, Special-Ed
		for i := 0; i < numStudents; i++ {
			if d.Fair(i, col) > 0.5 {
				disadvantaged[i] = true
			}
		}
	}

	// Train the bonus vector once, in log-discounted mode (k unknown).
	opts := fairrank.DefaultOptions()
	res, err := fairrank.Train(d, scorer, fairrank.LogDiscountedDisparity(0.05, 0.5), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("log-discounted bonus vector (%v): %v\n\n", d.FairNames(), res.Bonus)

	adjusted := make([]float64, numStudents)
	for i := range adjusted {
		adjusted[i] = base[i]
		for j := 0; j < d.NumFair(); j++ {
			adjusted[i] += d.Fair(i, j) * res.Bonus[j]
		}
	}

	// Size the set-aside at the disadvantaged population share (the
	// statistical-parity target a quota aims for).
	var union int
	for _, m := range disadvantaged {
		if m {
			union++
		}
	}
	reserve := int(float64(capacity) * float64(union) / float64(numStudents))

	type policy struct {
		name     string
		scores   []float64
		reserved int
	}
	policies := []policy{
		{"no intervention", base, 0},
		{fmt.Sprintf("set-aside quota (%d%% of seats)", 100*reserve/capacity), base, reserve},
		{"DCA bonus points", adjusted, 0},
	}

	fmt.Printf("%-32s %12s %12s %12s %12s %8s\n", "policy", "Low-Income", "ELL", "ENI", "Special-Ed", "Norm")
	for _, p := range policies {
		schools := make([]fairrank.School, numSchools)
		for s := range schools {
			schools[s] = fairrank.School{Capacity: capacity, Reserved: p.reserved, Scores: p.scores}
		}
		m, err := fairrank.DeferredAcceptance(prefs, schools, disadvantaged)
		if err != nil {
			log.Fatal(err)
		}
		if st, sc := fairrank.BlockingPair(prefs, schools, disadvantaged, m); st != -1 {
			log.Fatalf("unstable match: student %d, school %d", st, sc)
		}
		var admitted []int
		for i, s := range m.Assigned {
			if s >= 0 {
				admitted = append(admitted, i)
			}
		}
		disp := fairrank.Disparity(d, admitted)
		fmt.Printf("%-32s %+12.3f %+12.3f %+12.3f %+12.3f %8.3f\n",
			p.name, disp[0], disp[1], disp[2], disp[3], fairrank.Norm(disp))
	}
	fmt.Println("\n(disparity of the admitted set vs the full population; 0 = statistical parity)")
}
