// Quickstart: build a small dataset by hand, train DCA bonus points, and
// inspect the disparity before and after.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fairrank"
)

func main() {
	// A toy hiring pool: 5,000 candidates scored by a skills assessment
	// (0-100). Candidates from an under-resourced background ("first-gen",
	// 30% of the pool) score 8 points lower on average for reasons
	// unrelated to on-the-job performance.
	rng := rand.New(rand.NewSource(42))
	b := fairrank.NewBuilder([]string{"assessment"}, []string{"first-gen"})
	for i := 0; i < 5000; i++ {
		firstGen := 0.0
		if rng.Float64() < 0.30 {
			firstGen = 1
		}
		score := 70 + 12*rng.NormFloat64() - 8*firstGen
		b.Add([]float64{score}, []float64{firstGen})
	}
	d, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	scorer := fairrank.WeightedSum{Weights: []float64{1}}
	const k = 0.10 // we interview the top 10%

	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)
	before, err := ev.Disparity(nil, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population first-gen share: 30%%\n")
	fmt.Printf("disparity before: %+.3f (negative = first-gen underrepresented in interviews)\n", before[0])

	// Train the compensatory bonus. DCA samples the pool; it never ranks
	// the whole dataset during training.
	opts := fairrank.DefaultOptions()
	res, err := fairrank.Train(d, scorer, fairrank.DisparityObjective(k), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained bonus: %.1f points for first-gen candidates (in %s)\n", res.Bonus[0], res.Elapsed)

	after, err := ev.Disparity(res.Bonus, k)
	if err != nil {
		log.Fatal(err)
	}
	ndcg, err := ev.NDCG(res.Bonus, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disparity after: %+.3f\n", after[0])
	fmt.Printf("utility nDCG@%.2f: %.3f (1 = interview list unchanged)\n", k, ndcg)

	// The intervention is fully explainable: publish the bonus in advance
	// and every candidate can compute their own adjusted score.
	fmt.Println("\npolicy statement: \"first-generation applicants receive",
		res.Bonus[0], "points on the 100-point assessment\"")
}
