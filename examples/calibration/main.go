// Calibration: the stakeholder workflow of Section VI-A2. A school
// administrator wants the fairest selection that keeps utility (nDCG)
// above a floor. DCA trains the full compensatory vector once; the
// administrator then scales it proportionally, trading disparity against
// utility along a near-linear frontier, with the exact proportion found by
// binary search.
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"

	"fairrank"
)

func main() {
	cfg := fairrank.DefaultSchoolConfig()
	cfg.N = 40000
	d, err := fairrank.GenerateSchool(cfg)
	if err != nil {
		log.Fatal(err)
	}
	scorer := fairrank.WeightedSum{Weights: fairrank.SchoolScoreWeights()}
	const k = 0.05

	res, err := fairrank.Train(d, scorer, fairrank.DisparityObjective(k), fairrank.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ev := fairrank.NewEvaluator(d, scorer, fairrank.Beneficial)

	fmt.Printf("full bonus vector: %v\n\n", res.Bonus)
	fmt.Printf("%10s %16s %8s\n", "proportion", "disparity-norm", "nDCG")
	for w := 0.0; w <= 1.0001; w += 0.125 {
		scaled := fairrank.ScaleBonus(res.Bonus, w, 0.5)
		disp, err := ev.Disparity(scaled, k)
		if err != nil {
			log.Fatal(err)
		}
		ndcg, err := ev.NDCG(scaled, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.3f %16.3f %8.3f\n", w, fairrank.Norm(disp), ndcg)
	}

	// The administrator's constraint: nDCG must stay at or above 0.98.
	const floor = 0.98
	w, err := ev.FindScaleForNDCG(res.Bonus, k, floor, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	scaled := fairrank.ScaleBonus(res.Bonus, w, 0.5)
	disp, err := ev.Disparity(scaled, k)
	if err != nil {
		log.Fatal(err)
	}
	ndcg, err := ev.NDCG(scaled, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbinary search for nDCG >= %.2f: proportion %.3f, bonus %v\n", floor, w, scaled)
	fmt.Printf("  achieves nDCG %.3f with disparity norm %.3f\n", ndcg, fairrank.Norm(disp))
}
